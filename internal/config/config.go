// Package config assembles validated device configurations. The Paper()
// preset reproduces the evaluation setup of §IV-A: TLC media, two channels
// with two chips each, a 96 KiB programming unit, two shared 384 KiB write
// buffers, ~1.5 GB of flash and a 12 KiB L2P cache scaled down in
// proportion, with the channel bandwidth of UFS 4.0 (3200 MiB/s).
package config

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/conzone/conzone/internal/confzns"
	"github.com/conzone/conzone/internal/femu"
	"github.com/conzone/conzone/internal/ftl"
	"github.com/conzone/conzone/internal/legacy"
	"github.com/conzone/conzone/internal/nand"
	"github.com/conzone/conzone/internal/units"
)

// DeviceConfig bundles everything needed to build any of the three device
// models over the same media.
type DeviceConfig struct {
	Geometry nand.Geometry
	Latency  nand.LatencyTable
	FTL      ftl.Params
	Legacy   legacy.Params
	FEMU     femu.Params
	ConfZNS  confzns.Params
}

// Paper returns the §IV-A evaluation configuration.
//
// Derivation: the paper uses TLC, 2 channels x 2 chips, programming unit
// 96 KiB (superpage 384 KiB), flash capacity ~1.5 GB, two 384 KiB write
// buffers, a 12 KiB L2P cache with 4-byte entries, chunk 4 MiB, and a
// 3200 MiB/s channel. Here a block holds 252 pages (42 program units), so
// a superblock holds 15.75 MiB and the pow2-aligned zone is 16 MiB with a
// 256 KiB SLC-resident tail; 96 zones give 1.5 GiB of logical capacity.
func Paper() DeviceConfig {
	return DeviceConfig{
		Geometry: nand.Geometry{
			Channels:         2,
			ChipsPerChannel:  2,
			BlocksPerChip:    108, // 96 normal + 10 SLC + 2 map
			PagesPerBlock:    252,
			SLCPagesPerBlock: 84, // SLC mode stores 1 of TLC's 3 bits
			PageSize:         16 * units.KiB,
			SLCBlocks:        10,
			MapBlocks:        2,
			NormalMedia:      nand.TLC,
			ProgramUnit:      96 * units.KiB,
			SLCProgramUnit:   4 * units.KiB,
			ChannelMiBps:     3200,
		},
		Latency: nand.DefaultLatencies(),
		FTL: ftl.Params{
			NumWriteBuffers: 2,
			L2PCacheBytes:   12 * units.KiB,
			L2PEntryBytes:   4,
			ChunkSectors:    1024, // 4 MiB
			Search:          ftl.Bitmap,
			AggregateZones:  true,
			AlignZones:      true,
		},
		Legacy: legacy.Params{
			L2PCacheBytes:   12 * units.KiB,
			L2PEntryBytes:   4,
			PrefetchWindow:  1023, // §IV-C: one 4 MiB chunk of entries per miss
			GCFreeTarget:    2,
			OverprovisionSB: 7, // ~7% OP, typical for consumer parts
		},
		FEMU: femu.Params{
			VMExitMin: 20 * time.Microsecond,
			VMExitMax: 60 * time.Microsecond,
			Seed:      0x5EED,
		},
		ConfZNS: confzns.Params{
			VMExitMin: 20 * time.Microsecond,
			VMExitMax: 60 * time.Microsecond,
			Seed:      0xC0F2,
		},
	}
}

// Small returns a scaled-down configuration for fast tests and examples:
// the same structure as Paper() at 1/25 the media size.
func Small() DeviceConfig {
	c := Paper()
	c.Geometry.BlocksPerChip = 16 // 10 normal + 4 SLC + 2 map
	c.Geometry.PagesPerBlock = 24
	c.Geometry.SLCPagesPerBlock = 8
	c.Geometry.SLCBlocks = 4
	c.FTL.L2PCacheBytes = 4 * units.KiB
	c.FTL.ChunkSectors = 128 // 512 KiB chunks on the small device
	c.Legacy.L2PCacheBytes = 4 * units.KiB
	c.Legacy.PrefetchWindow = 127
	c.Legacy.OverprovisionSB = 3
	return c
}

// QLC returns the Paper configuration with QLC normal media and a 64 KiB
// programming unit (4 pages), whose superblock size is naturally a power
// of two — the geometry used to exercise native (unaligned) zones.
func QLC() DeviceConfig {
	c := Paper()
	c.Geometry.NormalMedia = nand.QLC
	c.Geometry.ProgramUnit = 64 * units.KiB
	c.Geometry.PagesPerBlock = 256 // 64 PUs; superblock 16 MiB exactly
	c.Geometry.SLCPagesPerBlock = 64
	c.FTL.AlignZones = false
	return c
}

// Validate cross-checks the composite configuration.
func (c DeviceConfig) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Latency.Validate(); err != nil {
		return err
	}
	if err := c.Latency.ValidateFor(c.Geometry); err != nil {
		return err
	}
	// Build throwaway devices to surface parameter errors early.
	if _, err := ftl.New(c.Geometry, c.Latency, c.FTL); err != nil {
		return fmt.Errorf("config: FTL params: %w", err)
	}
	if _, err := legacy.New(c.Geometry, c.Latency, c.Legacy); err != nil {
		return fmt.Errorf("config: legacy params: %w", err)
	}
	if _, err := femu.New(c.Geometry, c.Latency, c.FEMU); err != nil {
		return fmt.Errorf("config: FEMU params: %w", err)
	}
	if _, err := confzns.New(c.Geometry, c.Latency, c.ConfZNS); err != nil {
		return fmt.Errorf("config: ConfZNS params: %w", err)
	}
	return nil
}

// NewConZone builds the ConZone device from the configuration.
func (c DeviceConfig) NewConZone() (*ftl.FTL, error) {
	return ftl.New(c.Geometry, c.Latency, c.FTL)
}

// NewLegacy builds the legacy baseline device.
func (c DeviceConfig) NewLegacy() (*legacy.Device, error) {
	return legacy.New(c.Geometry, c.Latency, c.Legacy)
}

// NewFEMU builds the FEMU-personality device.
func (c DeviceConfig) NewFEMU() (*femu.Device, error) {
	return femu.New(c.Geometry, c.Latency, c.FEMU)
}

// NewConfZNS builds the ConfZNS-personality device.
func (c DeviceConfig) NewConfZNS() (*confzns.Device, error) {
	return confzns.New(c.Geometry, c.Latency, c.ConfZNS)
}

// Save writes the configuration as indented JSON.
func (c DeviceConfig) Save(path string) error {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads a configuration written by Save and validates it.
func Load(path string) (DeviceConfig, error) {
	var c DeviceConfig
	b, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	if err := json.Unmarshal(b, &c); err != nil {
		return c, fmt.Errorf("config: parse %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return c, fmt.Errorf("config: %s: %w", path, err)
	}
	return c, nil
}
