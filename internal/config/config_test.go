package config

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/conzone/conzone/internal/units"
)

func TestPaperConfigValid(t *testing.T) {
	c := Paper()
	if err := c.Validate(); err != nil {
		t.Fatalf("Paper() invalid: %v", err)
	}
	// Paper-anchored dimensions.
	if c.Geometry.Chips() != 4 {
		t.Errorf("chips = %d", c.Geometry.Chips())
	}
	if c.Geometry.SuperpageBytes() != 384*units.KiB {
		t.Errorf("superpage = %d", c.Geometry.SuperpageBytes())
	}
	if got := c.Geometry.SuperblockBytes(); got != 16128*units.KiB {
		t.Errorf("superblock = %d (want 15.75 MiB)", got)
	}
	if c.FTL.L2PCacheBytes != 12*units.KiB {
		t.Error("cache not 12 KiB")
	}
	f, err := c.NewConZone()
	if err != nil {
		t.Fatal(err)
	}
	if f.NumZones() != 96 {
		t.Errorf("zones = %d", f.NumZones())
	}
	if f.ZoneCapSectors()*units.Sector != 16*units.MiB {
		t.Errorf("zone capacity = %d", f.ZoneCapSectors()*units.Sector)
	}
	// Logical capacity 1.5 GiB, as §IV-A configures.
	if f.TotalSectors()*units.Sector != 1536*units.MiB {
		t.Errorf("capacity = %s", units.FormatBytes(f.TotalSectors()*units.Sector))
	}
	// SLC staging must hold every zone's alignment tail plus slack.
	tails := int64(f.NumZones()) * (f.ZoneCapSectors() - c.Geometry.SuperblockBytes()/units.Sector)
	if f.Staging().TotalSectors() < tails+2*f.Staging().SectorsPerSuperblock() {
		t.Errorf("SLC staging too small: %d sectors for %d tail sectors",
			f.Staging().TotalSectors(), tails)
	}
}

func TestSmallConfigValid(t *testing.T) {
	c := Small()
	if err := c.Validate(); err != nil {
		t.Fatalf("Small() invalid: %v", err)
	}
	f, err := c.NewConZone()
	if err != nil {
		t.Fatal(err)
	}
	if f.NumZones() != 10 {
		t.Errorf("zones = %d", f.NumZones())
	}
}

func TestQLCConfigValid(t *testing.T) {
	c := QLC()
	if err := c.Validate(); err != nil {
		t.Fatalf("QLC() invalid: %v", err)
	}
	f, err := c.NewConZone()
	if err != nil {
		t.Fatal(err)
	}
	// Native zones: capacity equals the (power-of-two) superblock.
	if f.ZoneCapSectors()*units.Sector != 16*units.MiB {
		t.Errorf("QLC zone = %d", f.ZoneCapSectors()*units.Sector)
	}
	if f.Stats().TailSectors != 0 {
		t.Error("native zones should have no tails")
	}
}

func TestBuildersProduceDistinctDevices(t *testing.T) {
	c := Small()
	cz, err := c.NewConZone()
	if err != nil {
		t.Fatal(err)
	}
	lg, err := c.NewLegacy()
	if err != nil {
		t.Fatal(err)
	}
	fm, err := c.NewFEMU()
	if err != nil {
		t.Fatal(err)
	}
	if cz.Array() == lg.Array() || lg.Array() == fm.Array() {
		t.Error("devices must own separate media")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	c := Small()
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Geometry != c.Geometry {
		t.Error("geometry did not round-trip")
	}
	if got.FTL != c.FTL || got.Legacy != c.Legacy || got.FEMU != c.FEMU {
		t.Error("params did not round-trip")
	}
}

func TestLoadRejectsBadFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	invalid := filepath.Join(dir, "invalid.json")
	if err := writeFile(invalid, "{}"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(invalid); err == nil {
		t.Error("zero config accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
