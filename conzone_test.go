package conzone

import (
	"bytes"
	"sync"
	"testing"
)

func openSmall(t *testing.T) *Device {
	t.Helper()
	dev, err := Open(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func pattern(off int64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte((off + int64(i)) % 239)
	}
	return b
}

func TestOpenConfigs(t *testing.T) {
	for name, cfg := range map[string]Config{
		"paper": PaperConfig(), "small": SmallConfig(), "qlc": QLCConfig(),
	} {
		dev, err := Open(cfg)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if dev.Capacity() <= 0 || dev.NumZones() <= 0 || dev.ZoneBytes() <= 0 {
			t.Errorf("%s: degenerate device", name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dev := openSmall(t)
	data := pattern(0, 96*4096)
	if err := dev.Write(0, data); err != nil {
		t.Fatal(err)
	}
	got, err := dev.Read(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
	if dev.Now() <= 0 {
		t.Error("virtual clock did not advance")
	}
}

func TestAlignmentEnforced(t *testing.T) {
	dev := openSmall(t)
	if err := dev.Write(1, make([]byte, 4096)); err == nil {
		t.Error("unaligned offset accepted")
	}
	if err := dev.Write(0, make([]byte, 100)); err == nil {
		t.Error("unaligned length accepted")
	}
	if _, err := dev.Read(0, 0); err == nil {
		t.Error("zero read accepted")
	}
	if _, err := dev.Read(-4096, 4096); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestSequentialityEnforced(t *testing.T) {
	dev := openSmall(t)
	if err := dev.Write(8192, make([]byte, 4096)); err == nil {
		t.Error("write off the write pointer accepted")
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	dev := openSmall(t)
	got, err := dev.Read(0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten data not zero")
		}
	}
}

func TestZoneLifecycle(t *testing.T) {
	dev := openSmall(t)
	if err := dev.OpenZone(1); err != nil {
		t.Fatal(err)
	}
	z, err := dev.Zone(1)
	if err != nil || z.State.String() != "EXPLICIT_OPEN" {
		t.Errorf("zone = %+v, %v", z, err)
	}
	if err := dev.CloseZone(1); err != nil {
		t.Fatal(err)
	}
	if err := dev.FinishZone(1); err != nil {
		t.Fatal(err)
	}
	if err := dev.ResetZone(1); err != nil {
		t.Fatal(err)
	}
	z, _ = dev.Zone(1)
	if z.State.String() != "EMPTY" {
		t.Errorf("state after reset = %v", z.State)
	}
	if len(dev.Zones()) != dev.NumZones() {
		t.Error("report size wrong")
	}
}

func TestResetZoneErasesData(t *testing.T) {
	dev := openSmall(t)
	data := pattern(0, 96*4096)
	if err := dev.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if err := dev.ResetZone(0); err != nil {
		t.Fatal(err)
	}
	got, err := dev.Read(0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("data survived reset")
		}
	}
}

func TestFlushAndStats(t *testing.T) {
	dev := openSmall(t)
	if err := dev.Write(0, pattern(0, 5*4096)); err != nil {
		t.Fatal(err)
	}
	if err := dev.FlushZone(0); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	if st.FTL.StagedSectors != 5 {
		t.Errorf("staged = %d", st.FTL.StagedSectors)
	}
	// 5 staged sectors = one full SLC page program + one 4 KiB partial.
	if st.NAND.PageProgramsSLC != 1 || st.NAND.PartialPrograms != 1 {
		t.Errorf("SLC programs = %d page + %d partial", st.NAND.PageProgramsSLC, st.NAND.PartialPrograms)
	}
	if dev.WAF() <= 0 {
		t.Error("WAF should be positive after writes")
	}
	if err := dev.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	dev := openSmall(t)
	var wg sync.WaitGroup
	// Four goroutines write their own zones; the device must serialise
	// without data races (run with -race).
	for z := 0; z < 4; z++ {
		wg.Add(1)
		go func(zone int64) {
			defer wg.Done()
			base := zone * dev.ZoneBytes()
			for i := int64(0); i < 8; i++ {
				off := base + i*48*1024
				if err := dev.Write(off, pattern(off, 48*1024)); err != nil {
					t.Errorf("zone %d: %v", zone, err)
					return
				}
			}
		}(int64(z))
	}
	wg.Wait()
	for z := int64(0); z < 4; z++ {
		base := z * dev.ZoneBytes()
		got, err := dev.Read(base, 8*48*1024)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 0, 8*48*1024)
		for i := int64(0); i < 8; i++ {
			want = append(want, pattern(base+i*48*1024, 48*1024)...)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("zone %d corrupted", z)
		}
	}
}

func TestRunJobOnAllModels(t *testing.T) {
	cfg := SmallConfig()
	cz, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewLegacy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := NewFEMU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{
		Name:             "seqwrite",
		Pattern:          SeqWrite,
		BlockBytes:       96 * 1024,
		NumJobs:          1,
		RangeBytes:       2 * 1024 * 1024, // one zone of the small config
		TotalBytesPerJob: 1344 * 1024,     // fits a FEMU zone (1.5 MiB) too
		FlushAtEnd:       true,
		Seed:             1,
	}
	for name, dev := range map[string]WorkloadDevice{
		"conzone": cz.FTL(), "legacy": lg, "femu": fm,
	} {
		res, err := RunJob(dev, job)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.BandwidthMiBps <= 0 || res.Ops == 0 {
			t.Errorf("%s: empty result %+v", name, res)
		}
	}
}

func TestDeviceSatisfiesWorkloadInterfaces(t *testing.T) {
	dev := openSmall(t)
	var _ WorkloadDevice = dev.FTL()
}
