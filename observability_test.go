package conzone

// End-to-end tests of the lifecycle telemetry subsystem: premature-flush
// attribution on the paper's buffer-conflict scenario, map-fetch span
// accounting across the three L2P search strategies, interval deltas, and
// the exporter acceptance criteria (valid Prometheus text, JSON and Chrome
// Trace output from a paper-config run).

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/conzone/conzone/internal/obs"
)

// conflictRounds drives the Fig. 6(b) pathology: alternating 48 KiB writes
// to two zones. With the paper's two shared buffers, zones 1 and 3 collide
// (both map to buffer 1) while zones 1 and 2 do not.
func conflictRounds(t *testing.T, dev *Device, zoneA, zoneB int, rounds int) {
	t.Helper()
	conflictRoundsFrom(t, dev, zoneA, zoneB, 0, rounds)
}

// conflictRoundsFrom continues the alternating pattern at round `from`, so
// a test can split the workload into intervals without rewinding the zones'
// write pointers.
func conflictRoundsFrom(t *testing.T, dev *Device, zoneA, zoneB, from, rounds int) {
	t.Helper()
	const ioBytes = 48 << 10
	buf := make([]byte, ioBytes)
	for i := range buf {
		buf[i] = byte(i)
	}
	zb := dev.ZoneBytes()
	for r := from; r < from+rounds; r++ {
		off := int64(r) * ioBytes
		if err := dev.Write(int64(zoneA)*zb+off, buf); err != nil {
			t.Fatalf("round %d zone %d: %v", r, zoneA, err)
		}
		if err := dev.Write(int64(zoneB)*zb+off, buf); err != nil {
			t.Fatalf("round %d zone %d: %v", r, zoneB, err)
		}
	}
}

func stageEvents(tel Telemetry, stage obs.Stage) []LifecycleEvent {
	var out []LifecycleEvent
	for _, e := range tel.Events {
		if e.Stage == stage {
			out = append(out, e)
		}
	}
	return out
}

func TestPrematureFlushEventsExactlyOnConflicts(t *testing.T) {
	t.Run("conflicting zones", func(t *testing.T) {
		dev, err := Open(PaperConfig())
		if err != nil {
			t.Fatal(err)
		}
		dev.EnableObservation(1 << 16)
		conflictRounds(t, dev, 1, 3, 24)

		tel := dev.Telemetry()
		evs := stageEvents(tel, obs.StagePrematureFlush)
		st := dev.Stats()
		if st.FTL.PrematureFlushes == 0 {
			t.Fatal("conflict workload caused no premature flushes")
		}
		// Exactness: one lifecycle event per counted premature flush.
		if int64(len(evs)) != st.FTL.PrematureFlushes {
			t.Fatalf("premature_flush events = %d, counter = %d",
				len(evs), st.FTL.PrematureFlushes)
		}
		if got := tel.Stage("premature_flush").Count; got != st.FTL.PrematureFlushes {
			t.Fatalf("aggregated count = %d, counter = %d", got, st.FTL.PrematureFlushes)
		}
		for _, e := range evs {
			if e.Cause != obs.CauseZoneConflict {
				t.Fatalf("premature flush with cause %q, want zone_conflict", e.Cause)
			}
			if e.Zone != 1 && e.Zone != 3 {
				t.Fatalf("premature flush of zone %d, want 1 or 3", e.Zone)
			}
			if e.End <= e.Begin {
				t.Fatalf("span has no duration: %+v", e)
			}
		}
		// And the cause breakdown agrees.
		if got := tel.Stage("premature_flush").ByCause["zone_conflict"]; got != int64(len(evs)) {
			t.Fatalf("by_cause[zone_conflict] = %d, want %d", got, len(evs))
		}
	})

	t.Run("non-conflicting zones", func(t *testing.T) {
		dev, err := Open(PaperConfig())
		if err != nil {
			t.Fatal(err)
		}
		dev.EnableObservation(1 << 16)
		conflictRounds(t, dev, 1, 2, 24) // buffers 1 and 0: no conflict

		tel := dev.Telemetry()
		if evs := stageEvents(tel, obs.StagePrematureFlush); len(evs) != 0 {
			t.Fatalf("clean workload produced %d premature flush events: %+v", len(evs), evs[0])
		}
		if n := dev.Stats().FTL.PrematureFlushes; n != 0 {
			t.Fatalf("clean workload counter = %d, want 0", n)
		}
	})
}

// TestFetchStrategySpanCounts checks the map-fetch accounting identity for
// every search strategy — event count == Stats.FTL.MapFetches and the sum
// of per-event flash reads == Stats.FTL.MapFetchReads — and the per-
// strategy fetch-cost bounds of §III-C.
func TestFetchStrategySpanCounts(t *testing.T) {
	cases := []struct {
		name     string
		strategy Strategy
		cause    obs.Cause
		maxReads int64
	}{
		{"bitmap", Bitmap, obs.CauseBitmap, 1},
		{"multiple", Multiple, obs.CauseMultiple, 3},
		{"pinned", Pinned, obs.CausePinned, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := PaperConfig()
			cfg.FTL.Search = tc.strategy
			dev, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			dev.EnableObservation(1 << 16)

			// Conflicting writes scatter page-granularity mappings through
			// SLC staging; cold random reads then miss the tiny L2P cache.
			conflictRounds(t, dev, 1, 3, 24)
			if err := dev.Flush(); err != nil {
				t.Fatal(err)
			}
			zb := dev.ZoneBytes()
			written := int64(24) * (48 << 10) / SectorSize
			state := uint64(0x9E3779B97F4A7C15)
			for i := 0; i < 200; i++ {
				state ^= state >> 12
				state ^= state << 25
				state ^= state >> 27
				sector := int64(state*0x2545F4914F6CDD1D>>1) % written
				if _, err := dev.Read(zb+sector*SectorSize, int(SectorSize)); err != nil {
					t.Fatal(err)
				}
			}

			tel := dev.Telemetry()
			evs := stageEvents(tel, obs.StageMapFetch)
			st := dev.Stats()
			if st.FTL.MapFetches == 0 {
				t.Fatal("workload caused no map fetches; test is vacuous")
			}
			if int64(len(evs)) != st.FTL.MapFetches {
				t.Fatalf("map_fetch events = %d, MapFetches = %d", len(evs), st.FTL.MapFetches)
			}
			var sum int64
			for _, e := range evs {
				if e.Cause != tc.cause {
					t.Fatalf("map fetch cause = %q, want %q", e.Cause, tc.cause)
				}
				if e.N < 1 || e.N > tc.maxReads {
					t.Fatalf("%s fetch needed %d flash reads, want 1..%d", tc.name, e.N, tc.maxReads)
				}
				sum += e.N
			}
			if sum != st.FTL.MapFetchReads {
				t.Fatalf("sum of per-event reads = %d, MapFetchReads = %d", sum, st.FTL.MapFetchReads)
			}
		})
	}
}

func TestStatsDelta(t *testing.T) {
	dev, err := Open(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	conflictRounds(t, dev, 1, 3, 8)
	prev := dev.Stats()
	conflictRoundsFrom(t, dev, 1, 3, 8, 8)
	cur := dev.Stats()

	d := cur.Delta(prev)
	if d.FTL.HostWrittenBytes != cur.FTL.HostWrittenBytes-prev.FTL.HostWrittenBytes {
		t.Fatalf("FTL delta wrong: %d", d.FTL.HostWrittenBytes)
	}
	if d.FTL.PrematureFlushes != cur.FTL.PrematureFlushes-prev.FTL.PrematureFlushes {
		t.Fatalf("premature delta wrong: %d", d.FTL.PrematureFlushes)
	}
	if d.NAND.BytesProgrammed != cur.NAND.BytesProgrammed-prev.NAND.BytesProgrammed {
		t.Fatalf("NAND delta wrong: %d", d.NAND.BytesProgrammed)
	}
	if d.Buffers.Evictions != cur.Buffers.Evictions-prev.Buffers.Evictions {
		t.Fatalf("buffer delta wrong: %d", d.Buffers.Evictions)
	}
	// Interval WAF is recomputed from the interval's bytes, not copied.
	wantWAF := float64(d.NAND.BytesProgrammed) / float64(d.FTL.HostWrittenBytes)
	if d.WAF != wantWAF {
		t.Fatalf("interval WAF = %v, want %v", d.WAF, wantWAF)
	}
	// Delta against a zero snapshot reproduces the cumulative stats.
	if z := cur.Delta(Stats{}); z.FTL != cur.FTL || z.NAND != cur.NAND {
		t.Fatal("delta from zero snapshot does not reproduce totals")
	}
}

// TestTelemetryExportEndToEnd is the PR's acceptance check: a paper-config
// run with observation on emits parsable Prometheus text, a JSON metrics
// snapshot, and a Chrome Trace Event file.
func TestTelemetryExportEndToEnd(t *testing.T) {
	dev, err := Open(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Telemetry before enabling is a zero snapshot, not a crash.
	if tel := dev.Telemetry(); len(tel.Stages) != 0 || tel.Recorded != 0 {
		t.Fatalf("disabled telemetry = %+v, want zero", tel)
	}

	dev.EnableObservation(0)
	conflictRounds(t, dev, 1, 3, 16)
	if err := dev.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Read(dev.ZoneBytes(), int(64*SectorSize)); err != nil {
		t.Fatal(err)
	}
	if err := dev.ResetZone(3); err != nil {
		t.Fatal(err)
	}

	tel := dev.Telemetry()
	if tel.Recorded == 0 || len(tel.Stages) == 0 {
		t.Fatal("no telemetry recorded")
	}
	for _, stage := range []string{"host_write", "premature_flush", "slc_stage", "zone_reset", "nand_program"} {
		if tel.Stage(stage).Count == 0 {
			t.Fatalf("stage %q absent from paper-config run", stage)
		}
	}
	if len(tel.Resources) == 0 {
		t.Fatal("no resource usage captured")
	}

	var prom bytes.Buffer
	if err := tel.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"conzone_stage_spans_total{stage=\"premature_flush\"}",
		"conzone_stage_cause_total{stage=\"premature_flush\",cause=\"zone_conflict\"}",
		"conzone_stage_latency_seconds{stage=\"host_write\",quantile=\"0.99\"}",
		"conzone_resource_utilization",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("Prometheus output missing %q", want)
		}
	}

	var js bytes.Buffer
	if err := tel.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON export does not parse: %v", err)
	}
	if _, ok := decoded["stages"]; !ok {
		t.Fatal("JSON export missing stages")
	}

	var chrome bytes.Buffer
	if err := tel.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("Chrome trace has no events")
	}
	for _, e := range doc.TraceEvents {
		if e.Phase != "M" && e.Phase != "X" {
			t.Fatalf("unexpected trace phase %q", e.Phase)
		}
	}

	// Disabling returns the device to the zero-overhead path.
	dev.DisableObservation()
	if err := dev.Write(4*dev.ZoneBytes(), make([]byte, 8*SectorSize)); err != nil {
		t.Fatal(err)
	}
	if tel := dev.Telemetry(); tel.Recorded != 0 {
		t.Fatalf("telemetry after disable = %+v, want zero", tel)
	}

	if err := dev.CheckInvariants(); err != nil {
		t.Fatalf("device inconsistent after observed run: %v", err)
	}
}
