package conzone

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§IV). Each benchmark runs the corresponding experiment from
// internal/experiments and reports the paper-relevant quantities as custom
// metrics (virtual-time bandwidths, KIOPS, ratios, WAF); wall-clock ns/op
// measures the emulator itself. Run with:
//
//	go test -bench=. -benchmem
//
// The same experiments are printed in table form by cmd/conzone-bench.

import (
	"testing"

	"github.com/conzone/conzone/internal/config"
	"github.com/conzone/conzone/internal/experiments"
	"github.com/conzone/conzone/internal/l2pcache"
	"github.com/conzone/conzone/internal/mapping"
	"github.com/conzone/conzone/internal/units"
	"github.com/conzone/conzone/internal/workload"
)

func benchOptions() experiments.Options {
	if testing.Short() {
		return experiments.Quick()
	}
	return experiments.Default()
}

// BenchmarkTable2 regenerates Table II: the media latencies of the timing
// model, reported in microseconds of virtual time.
func BenchmarkTable2(b *testing.B) {
	cfg := config.Paper()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.VerifyTable2(rows); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Measured.Microseconds()), r.Media+"_"+r.Op+"_us")
			}
		}
	}
}

// BenchmarkFig6a regenerates Fig. 6(a): 512 KiB sequential bandwidth for
// ConZone, Legacy and FEMU, single- and multi-threaded.
func BenchmarkFig6a(b *testing.B) {
	cfg := config.Paper()
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6a(cfg, opt)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Pass {
			b.Errorf("fig6a claims not reproduced:\n%v", res.Checks)
		}
		if i == 0 {
			for _, r := range res.Rows {
				if r.Series == "ZMS (synth.)" {
					continue
				}
				b.ReportMetric(r.WriteST, r.Series+"_writeST_MiBps")
				b.ReportMetric(r.WriteMT, r.Series+"_writeMT_MiBps")
				b.ReportMetric(r.ReadST, r.Series+"_readST_MiBps")
				b.ReportMetric(r.ReadMT, r.Series+"_readMT_MiBps")
			}
		}
	}
}

// BenchmarkFig6b regenerates Fig. 6(b): the write-buffer conflict study.
func BenchmarkFig6b(b *testing.B) {
	cfg := config.Paper()
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6b(cfg, opt)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Pass {
			b.Errorf("fig6b claims not reproduced:\n%v", res.Checks)
		}
		if i == 0 {
			b.ReportMetric(res.ConflictBW, "conflict_MiBps")
			b.ReportMetric(res.NoConflictBW, "noConflict_MiBps")
			b.ReportMetric(res.ConflictWAF, "conflict_WAF")
			b.ReportMetric(res.NoConflictWAF, "noConflict_WAF")
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7: page vs hybrid mapping under 4 KiB
// random reads over 1 MiB / 16 MiB / 1 GiB ranges.
func BenchmarkFig7(b *testing.B) {
	cfg := config.Paper()
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(cfg, opt)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Pass {
			b.Errorf("fig7 claims not reproduced:\n%v", res.Checks)
		}
		if i == 0 {
			for _, p := range res.Points {
				name := p.Mapping + "_" + units.FormatBytes(p.Range)
				b.ReportMetric(p.KIOPS, name+"_KIOPS")
				b.ReportMetric(float64(p.P99.Microseconds()), name+"_p99_us")
			}
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8: BITMAP vs MULTIPLE vs PINNED L2P
// search strategies at the paper's ~27.4% miss rate.
func BenchmarkFig8(b *testing.B) {
	cfg := config.Paper()
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8(cfg, opt)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Pass {
			b.Errorf("fig8 claims not reproduced:\n%v", res.Checks)
		}
		if i == 0 {
			for _, p := range res.Points {
				b.ReportMetric(p.KIOPS, p.Strategy+"_KIOPS")
				b.ReportMetric(float64(p.P99.Microseconds()), p.Strategy+"_p99_us")
				b.ReportMetric(p.MissRatio*100, p.Strategy+"_miss_pct")
			}
		}
	}
}

// BenchmarkAblationChannelBW quantifies the channel-bandwidth model
// (DESIGN.md ablation 1).
func BenchmarkAblationChannelBW(b *testing.B) {
	cfg := config.Paper()
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationChannelBW(cfg, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			w := res.Metrics["writeMT_MiBps"]
			b.ReportMetric(w[0], "throttled_MiBps")
			b.ReportMetric(w[1], "unthrottled_MiBps")
		}
	}
}

// BenchmarkAblationDedicatedBuffers re-runs the conflict workload with a
// buffer per zone (DESIGN.md ablation 2).
func BenchmarkAblationDedicatedBuffers(b *testing.B) {
	cfg := config.Paper()
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationDedicatedBuffers(cfg, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			m := res.Metrics["bandwidth_MiBps"]
			b.ReportMetric(m[0], "shared_MiBps")
			b.ReportMetric(m[1], "dedicated_MiBps")
			e := res.Metrics["evictions"]
			b.ReportMetric(e[0], "shared_evictions")
		}
	}
}

// BenchmarkAblationCombine toggles the Fig. 3 ③ combine path (DESIGN.md
// ablation 3).
func BenchmarkAblationCombine(b *testing.B) {
	cfg := config.Paper()
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationCombine(cfg, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			m := res.Metrics["WAF"]
			b.ReportMetric(m[0], "combine_WAF")
			b.ReportMetric(m[1], "noCombine_WAF")
		}
	}
}

// BenchmarkAblationZoneAggregation compares chunk-only against chunk+zone
// aggregation (DESIGN.md ablation 4).
func BenchmarkAblationZoneAggregation(b *testing.B) {
	cfg := config.Paper()
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationZoneAggregation(cfg, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			m := res.Metrics["KIOPS"]
			b.ReportMetric(m[0], "chunkOnly_KIOPS")
			b.ReportMetric(m[1], "chunkZone_KIOPS")
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the emulator's own hot paths (wall-clock performance
// of the library, not virtual-time results).

// BenchmarkEmulatorSeqWrite measures the emulator's wall-clock cost of
// pushing sequential writes through the full ConZone write path.
func BenchmarkEmulatorSeqWrite(b *testing.B) {
	cfg := config.Small()
	f, err := cfg.NewConZone()
	if err != nil {
		b.Fatal(err)
	}
	zc := f.ZoneCapSectors()
	// Stay within each zone's head region: the alignment tails would
	// otherwise accumulate in SLC across iterations and exhaust staging.
	headSectors := cfg.Geometry.SuperblockBytes() / units.Sector
	payloads := make([][]byte, 96)
	var at Time
	var lba int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if lba%zc+96 > headSectors {
			lba += zc - lba%zc // move to the next zone's start
		}
		if lba >= int64(f.NumZones())*zc {
			b.StopTimer()
			for z := 0; z < f.NumZones(); z++ {
				if _, err := f.ResetZone(at, z); err != nil {
					b.Fatal(err)
				}
			}
			lba = 0
			b.StartTimer()
		}
		d, err := f.Write(at, lba, payloads)
		if err != nil {
			b.Fatal(err)
		}
		at = d
		lba += 96
	}
	b.SetBytes(96 * units.Sector)
}

// BenchmarkEmulatorRandRead measures the wall-clock cost of 4 KiB random
// reads through the hybrid-mapping read path.
func BenchmarkEmulatorRandRead(b *testing.B) {
	cfg := config.Small()
	f, err := cfg.NewConZone()
	if err != nil {
		b.Fatal(err)
	}
	// Two full zones: the small config's SLC region can hold exactly two
	// zones' alignment tails.
	region := int64(2) * f.ZoneCapSectors() * units.Sector
	at, err := workload.Prefill(f, 0, 0, region, false)
	if err != nil {
		b.Fatal(err)
	}
	rngSectors := region / units.Sector
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lba := (int64(i) * 2654435761) % rngSectors
		_, d, err := f.Read(at, lba, 1)
		if err != nil {
			b.Fatal(err)
		}
		at = d
	}
	b.SetBytes(units.Sector)
}

// BenchmarkL2PCacheLookup measures the cache's probe cost.
func BenchmarkL2PCacheLookup(b *testing.B) {
	tbl, err := mapping.NewTable(mapping.Config{
		TotalSectors: 1 << 20, ChunkSectors: 1024, ZoneSectors: 4096, AggLimit: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := l2pcache.New(12*units.KiB, 4, tbl)
	if err != nil {
		b.Fatal(err)
	}
	for lpa := int64(0); lpa < 3000; lpa++ {
		c.Insert(mapping.Page, lpa, mapping.PSN(lpa), false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(int64(i) % 4000)
	}
}

// BenchmarkMappingAggregation measures chunk-aggregation checks.
func BenchmarkMappingAggregation(b *testing.B) {
	tbl, err := mapping.NewTable(mapping.Config{
		TotalSectors: 1 << 16, ChunkSectors: 1024, ZoneSectors: 4096, AggLimit: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	for lpa := int64(0); lpa < 1<<16; lpa++ {
		if err := tbl.Set(lpa, mapping.PSN(lpa)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.TryAggregateChunk(int64(i) % (1 << 16))
	}
}
