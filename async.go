package conzone

// This file is the asynchronous face of the Device: NVMe-style multi-queue
// submission with queue-depth modeling and Zone Append, layered over
// internal/host. The synchronous API in conzone.go is the queue-depth-1
// special case of the same path.

import (
	"errors"
	"fmt"

	"github.com/conzone/conzone/internal/host"
)

// Host-interface types re-exported for asynchronous submitters.
type (
	// HostRequest describes one command to queue on the device.
	HostRequest = host.Request
	// HostCompletion is one finished command with its timing.
	HostCompletion = host.Completion
	// HostOp identifies a host command kind.
	HostOp = host.Op
	// Tag identifies a submitted command until its completion is reaped.
	Tag = host.Tag
	// HostConfig sizes the device's submission/completion queue pairs.
	HostConfig = host.Config
)

// Host command kinds. Note: HostRequest addresses are in sectors, not
// bytes; divide byte offsets by SectorSize (AsyncWriter does this for you).
const (
	OpRead   = host.OpRead
	OpWrite  = host.OpWrite
	OpAppend = host.OpAppend
	OpFlush  = host.OpFlush
	OpReset  = host.OpReset
	OpClose  = host.OpClose
	OpFinish = host.OpFinish
)

// ErrQueueFull is returned by Submit when the target submission queue
// already holds its depth in unreaped commands.
var ErrQueueFull = host.ErrQueueFull

// ConfigureQueues replaces the device's host interface with queues
// submission/completion queue pairs of the given depth. The device must be
// idle: no queued or unreaped command. Values <= 0 select the defaults.
func (d *Device) ConfigureQueues(queues, depth int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.h.Idle() {
		return fmt.Errorf("conzone: cannot reconfigure queues with commands in flight")
	}
	h, err := host.New(d.f, host.Config{Queues: queues, Depth: depth})
	if err != nil {
		return err
	}
	d.h = h
	return nil
}

// QueueCount returns the number of submission queues.
func (d *Device) QueueCount() int { return d.h.Queues() }

// QueueDepth returns the per-queue outstanding-command limit.
func (d *Device) QueueDepth() int { return d.h.Depth() }

// Submit enqueues the request on submission queue q at the device's
// current virtual time and returns its tag. The command executes when the
// arbiter next runs (Poll, Wait, or any synchronous operation); its result
// arrives through queue q's completion queue. Submit fails fast with
// ErrQueueFull when q already holds QueueDepth unreaped commands.
func (d *Device) Submit(q int, req HostRequest) (Tag, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.h.Submit(d.now, q, req)
}

// SubmitAt enqueues the request with an explicit virtual submission
// instant (experiment-harness API). Dispatch order across all queued
// commands is by (ready time, tag), never by call order alone.
func (d *Device) SubmitAt(at Time, q int, req HostRequest) (Tag, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.h.Submit(at, q, req)
}

// Poll dispatches all queued commands and reaps up to max completions from
// queue q in virtual completion order (max <= 0 reaps all available). The
// device clock advances to the latest reaped completion.
func (d *Device) Poll(q, max int) []HostCompletion {
	d.mu.Lock()
	defer d.mu.Unlock()
	comps := d.h.Poll(q, max)
	for _, c := range comps {
		d.advance(c.Done)
	}
	return comps
}

// Wait dispatches all queued commands and reaps exactly the given
// command's completion, leaving other completions queued for their
// pollers. It reports false for an unknown or already-reaped tag.
func (d *Device) Wait(tag Tag) (HostCompletion, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	comp, ok := d.h.Wait(tag)
	if ok {
		d.advance(comp.Done)
	}
	return comp, ok
}

// AsyncWriter streams writes and Zone Appends through one submission queue
// while keeping up to depth commands outstanding, waiting for the oldest
// when the window fills. Errors are sticky: the first failed command stops
// the stream and every later call reports it. An AsyncWriter is not safe
// for concurrent use; open one per goroutine (on distinct queues).
type AsyncWriter struct {
	d     *Device
	queue int
	depth int

	err      error
	inflight []Tag
	index    map[Tag]int // tag -> submission index
	offsets  []int64     // per submission: assigned byte offset, -1 until completed
	attempts int64       // Submit calls issued, including queue-full retries
}

// NewAsyncWriter returns a writer submitting on queue q with a window of
// depth outstanding commands (depth <= 0 or beyond the queue depth uses
// the queue depth).
func (d *Device) NewAsyncWriter(q, depth int) (*AsyncWriter, error) {
	if q < 0 || q >= d.h.Queues() {
		return nil, fmt.Errorf("conzone: queue %d out of range [0,%d)", q, d.h.Queues())
	}
	if depth <= 0 || depth > d.h.Depth() {
		depth = d.h.Depth()
	}
	return &AsyncWriter{d: d, queue: q, depth: depth, index: make(map[Tag]int)}, nil
}

// Err returns the writer's sticky error: the first submission or
// completion failure, if any.
func (w *AsyncWriter) Err() error { return w.err }

// Write queues a write of data at byte offset off (which must equal the
// target zone's write pointer when the command dispatches) and returns the
// submission's index. The write may still fail asynchronously; Flush — or
// a later call — surfaces the error.
func (w *AsyncWriter) Write(off int64, data []byte) (int, error) {
	if w.err != nil {
		return -1, w.err
	}
	if err := checkAlign(off, len(data)); err != nil {
		w.err = err
		return -1, err
	}
	return w.submit(HostRequest{Op: OpWrite, LBA: off / SectorSize, Payloads: toSectors(data)})
}

// Append queues a Zone Append of data to the zone and returns the
// submission's index. The device assigns the in-zone offset at dispatch;
// once the command completes (window turnover or Flush), AssignedOffset
// reports where the data landed.
func (w *AsyncWriter) Append(zone int, data []byte) (int, error) {
	if w.err != nil {
		return -1, w.err
	}
	if err := checkAlign(0, len(data)); err != nil {
		w.err = err
		return -1, err
	}
	return w.submit(HostRequest{Op: OpAppend, Zone: zone, Payloads: toSectors(data)})
}

// submit opens window space and queues the request. A shared queue can be
// full even when the writer's own window has room (another submitter holds
// the remaining slots); resubmitting without waiting would spin forever at
// one virtual instant, so the writer frees a slot by reaping its own oldest
// completion before each retry, and gives up only when none of the queue's
// occupants are its own.
func (w *AsyncWriter) submit(req HostRequest) (int, error) {
	for len(w.inflight) >= w.depth {
		if err := w.reapOldest(); err != nil {
			return -1, err
		}
	}
	w.attempts++
	tag, err := w.d.Submit(w.queue, req)
	for errors.Is(err, ErrQueueFull) && len(w.inflight) > 0 {
		if rerr := w.reapOldest(); rerr != nil {
			return -1, rerr
		}
		w.attempts++
		tag, err = w.d.Submit(w.queue, req)
	}
	if err != nil {
		w.err = err
		return -1, err
	}
	i := len(w.offsets)
	w.offsets = append(w.offsets, -1)
	w.index[tag] = i
	w.inflight = append(w.inflight, tag)
	return i, nil
}

// reapOldest waits for the writer's oldest outstanding command.
func (w *AsyncWriter) reapOldest() error {
	tag := w.inflight[0]
	w.inflight = w.inflight[1:]
	comp, ok := w.d.Wait(tag)
	if !ok {
		w.err = fmt.Errorf("conzone: completion of tag %d reaped elsewhere", tag)
		return w.err
	}
	if i, found := w.index[tag]; found {
		if comp.Err == nil && comp.LBA >= 0 {
			w.offsets[i] = comp.LBA * SectorSize
		}
		delete(w.index, tag)
	}
	if comp.Err != nil && w.err == nil {
		w.err = comp.Err
	}
	return w.err
}

// Flush waits for every outstanding command and returns the writer's
// sticky error state. The writer is reusable afterwards if no error
// occurred.
func (w *AsyncWriter) Flush() error {
	for len(w.inflight) > 0 {
		if err := w.reapOldest(); err != nil {
			// Drain the remaining window so the queue slots free up,
			// preserving the first error.
			for len(w.inflight) > 0 {
				w.d.Wait(w.inflight[0])
				w.inflight = w.inflight[1:]
			}
			return err
		}
	}
	return w.err
}

// Outstanding returns how many of the writer's commands are in flight.
func (w *AsyncWriter) Outstanding() int { return len(w.inflight) }

// SubmitAttempts returns how many Submit calls the writer has issued,
// including retries after a full queue. With the queue to itself the count
// equals the commands written; regression tests pin it to prove a full
// shared queue costs one completion wait per retry instead of a busy loop.
func (w *AsyncWriter) SubmitAttempts() int64 { return w.attempts }

// AssignedOffset returns the byte offset the device assigned to submission
// i (as returned by Write or Append), or -1 while the command is still
// outstanding or after it failed.
func (w *AsyncWriter) AssignedOffset(i int) int64 {
	if i < 0 || i >= len(w.offsets) {
		return -1
	}
	return w.offsets[i]
}
