package conzone

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"github.com/conzone/conzone/internal/config"
	"github.com/conzone/conzone/internal/ftl"
	"github.com/conzone/conzone/internal/host"
	"github.com/conzone/conzone/internal/nand"
	"github.com/conzone/conzone/internal/obs"
	"github.com/conzone/conzone/internal/sim"
	"github.com/conzone/conzone/internal/units"
)

// shardTrace captures everything observable about one workload run: the
// completion stream in poll order (every field, including read payload
// bytes), a full media read-back, the FTL and NAND counter snapshots, and
// the telemetry recorder's fingerprint. Two runs are "bit-identical" in the
// sense the sharded executor promises exactly when their shardTraces match.
type shardTrace struct {
	completions [32]byte // sha256 over the ordered completion stream
	media       [32]byte // sha256 over a full device read-back
	stats       ftl.Stats
	counters    nand.Counters
	telemetry   [32]byte // obs.Recorder fingerprint
	polled      int
}

// shardWorkload drives a seeded mix designed to stress every path the
// sharded read executor takes: long back-to-back read bursts (well past the
// parallel threshold of 32 jobs, so the worker goroutines really run),
// multi-sector reads spanning page runs, reads served from the write buffer
// and the L2P cache, reads of unwritten sectors, plus the write-class fences
// (writes, flushes, resets) that force drains between bursts.
func shardWorkload(t *testing.T, shards, gmp int) shardTrace {
	t.Helper()
	prev := runtime.GOMAXPROCS(gmp) // before ftl.New: the FTL caches this
	defer runtime.GOMAXPROCS(prev)

	cfg := config.Small()
	cfg.FTL.Shards = shards
	f, err := ftl.New(cfg.Geometry, cfg.Latency, cfg.FTL)
	if err != nil {
		t.Fatalf("shards=%d: build FTL: %v", shards, err)
	}
	f.SetRecorder(obs.NewRecorder(4096))
	ctrl, err := host.New(f, host.Config{Queues: 1, Depth: 96})
	if err != nil {
		t.Fatalf("shards=%d: build controller: %v", shards, err)
	}

	var tr shardTrace
	h := sha256.New()
	var word [8]byte
	hashInt := func(v int64) {
		binary.LittleEndian.PutUint64(word[:], uint64(v))
		h.Write(word[:])
	}
	hashCompletion := func(c *host.Completion) {
		tr.polled++
		hashInt(int64(c.Tag))
		hashInt(int64(c.Queue))
		hashInt(int64(c.Op))
		hashInt(int64(c.Zone))
		hashInt(c.LBA)
		hashInt(c.N)
		hashInt(int64(c.Submitted))
		hashInt(int64(c.Dispatched))
		hashInt(int64(c.Done))
		hashInt(int64(c.Status))
		if c.Err != nil {
			h.Write([]byte(c.Err.Error()))
		}
		for _, sec := range c.Data {
			if sec == nil {
				h.Write([]byte{0xEE}) // unwritten marker
				continue
			}
			h.Write(sec)
		}
	}

	var now sim.Time
	inflight := 0
	drainAll := func() {
		for inflight > 0 {
			comps := ctrl.Poll(0, inflight)
			if len(comps) == 0 {
				t.Fatalf("shards=%d: no completion with %d in flight", shards, inflight)
			}
			for i := range comps {
				c := &comps[i]
				if c.Err != nil {
					t.Fatalf("shards=%d: %v lba %d: %v", shards, c.Op, c.LBA, c.Err)
				}
				if c.Done > now {
					now = c.Done
				}
				hashCompletion(c)
				inflight--
			}
		}
	}
	submit := func(req host.Request) {
		if _, err := ctrl.Submit(now, 0, req); err != nil {
			t.Fatalf("shards=%d: submit %v lba %d: %v", shards, req.Op, req.LBA, err)
		}
		inflight++
		now = now.Add(sim.Duration(1000))
	}

	zoneCap := f.ZoneCapSectors()
	sbCap := f.Geometry().SuperblockBytes() / units.Sector
	numZones := f.NumZones()
	rng := rand.New(rand.NewSource(0xD15C))
	payload := func(lba int64) [][]byte {
		s := make([]byte, units.Sector)
		binary.LittleEndian.PutUint64(s, uint64(lba)^0xA5A5A5A5)
		s[len(s)-1] = byte(lba >> 3)
		return [][]byte{s}
	}

	// Phase 1: seed three zones with data — partially, so reads will mix
	// mapped sectors, write-buffered sectors and unwritten tails.
	written := make([]int64, numZones)
	for z := 0; z < 3 && z < numZones; z++ {
		n := sbCap/2 + int64(z)*7
		for off := int64(0); off < n; off++ {
			if inflight >= 64 {
				drainAll()
			}
			lba := int64(z)*zoneCap + off
			submit(host.Request{Op: host.OpWrite, LBA: lba, Payloads: payload(lba)})
		}
		written[z] = n
		drainAll()
	}
	submit(host.Request{Op: host.OpFlush, Zone: -1})
	drainAll()

	// Phase 2: alternating read bursts and write-class fences. Each burst
	// submits 48 reads back to back — no polls in between — so the host
	// stages them and the drain crosses the parallel threshold.
	for round := 0; round < 6; round++ {
		for i := 0; i < 48; i++ {
			z := rng.Intn(3)
			span := written[z] + 16 // overhang into unwritten space sometimes
			lba := int64(z)*zoneCap + rng.Int63n(span)
			n := int64(1)
			if i%5 == 0 {
				n = 4 + rng.Int63n(5) // multi-sector: page-run batching
				if rem := int64(z+1)*zoneCap - lba; n > rem {
					n = rem
				}
			}
			submit(host.Request{Op: host.OpRead, LBA: lba, N: n})
		}
		drainAll()

		// Fence with write-class traffic; leave some of it buffered so the
		// next burst hits the write buffer.
		z := rng.Intn(3)
		if written[z] >= sbCap-8 {
			submit(host.Request{Op: host.OpReset, Zone: z})
			written[z] = 0
		}
		for k := 0; k < 3; k++ {
			lba := int64(z)*zoneCap + written[z]
			submit(host.Request{Op: host.OpWrite, LBA: lba, Payloads: payload(lba)})
			written[z]++
		}
		if round%2 == 1 {
			submit(host.Request{Op: host.OpFlush, Zone: z})
		}
		drainAll()
	}

	// Phase 3: one final un-polled burst left staged, then a flush-all —
	// the drain-on-write-class fence path — and a full drain.
	for i := 0; i < 40; i++ {
		z := rng.Intn(3)
		lba := int64(z)*zoneCap + rng.Int63n(written[z]+1)
		submit(host.Request{Op: host.OpRead, LBA: lba, N: 1})
	}
	submit(host.Request{Op: host.OpFlush, Zone: -1})
	drainAll()
	h.Sum(tr.completions[:0])

	// Full media read-back, zone by zone, through the sequential path's own
	// completion machinery (reads after a flush with nothing staged).
	h.Reset()
	for z := 0; z < 3 && z < numZones; z++ {
		for off := int64(0); off < sbCap; off += 8 {
			n := int64(8)
			if sbCap-off < n {
				n = sbCap - off
			}
			submit(host.Request{Op: host.OpRead, LBA: int64(z)*zoneCap + off, N: n})
			for inflight > 0 {
				comps := ctrl.Poll(0, inflight)
				for i := range comps {
					c := &comps[i]
					if c.Err != nil {
						t.Fatalf("shards=%d: read-back lba %d: %v", shards, c.LBA, c.Err)
					}
					for _, sec := range c.Data {
						if sec == nil {
							h.Write([]byte{0xEE})
							continue
						}
						h.Write(sec)
					}
					inflight--
				}
			}
		}
	}
	h.Sum(tr.media[:0])

	tr.stats = f.Stats()
	tr.counters = f.Array().Counters()
	tr.telemetry = f.Recorder().Fingerprint()
	return tr
}

// TestShardDeterminism pins the tentpole invariant: channel-sharded read
// execution is bit-identical to the sequential path — same completion
// stream, same media contents, same counters, same telemetry — for every
// shard count and every GOMAXPROCS. The baseline is Shards=1 (sharding
// compiled out) at GOMAXPROCS=1; every variant must match it exactly.
func TestShardDeterminism(t *testing.T) {
	base := shardWorkload(t, 1, 1)
	if base.polled == 0 {
		t.Fatal("baseline run polled no completions")
	}

	variants := []struct {
		shards, gmp int
	}{
		{1, runtime.NumCPU()}, // sequential path must ignore GOMAXPROCS too
		{0, 1},                // auto shards, single proc: inline fallback
		{0, 4},
		{0, runtime.NumCPU()},
		{8, runtime.NumCPU()}, // over-ask: clamps to channel count
	}
	for _, v := range variants {
		v := v
		t.Run(fmt.Sprintf("shards=%d/gomaxprocs=%d", v.shards, v.gmp), func(t *testing.T) {
			got := shardWorkload(t, v.shards, v.gmp)
			if got.completions != base.completions {
				t.Errorf("completion stream diverged from sequential baseline (%d vs %d completions)", got.polled, base.polled)
			}
			if got.media != base.media {
				t.Error("media read-back diverged from sequential baseline")
			}
			if got.stats != base.stats {
				t.Errorf("FTL stats diverged:\n got %+v\nwant %+v", got.stats, base.stats)
			}
			if got.counters != base.counters {
				t.Errorf("NAND counters diverged:\n got %+v\nwant %+v", got.counters, base.counters)
			}
			if got.telemetry != base.telemetry {
				t.Error("telemetry fingerprint diverged from sequential baseline")
			}
		})
	}
}

// TestShardAutoConfig pins the Params.Shards knob semantics: 0 selects one
// shard per channel, 1 disables sharding entirely, and explicit counts are
// clamped to the channel count.
func TestShardAutoConfig(t *testing.T) {
	cfg := config.Small()
	channels := cfg.Geometry.Channels

	for _, tc := range []struct {
		shards, want int
	}{
		{0, channels}, {1, 0}, {2, 2}, {64, channels},
	} {
		cfg.FTL.Shards = tc.shards
		f, err := ftl.New(cfg.Geometry, cfg.Latency, cfg.FTL)
		if err != nil {
			t.Fatalf("Shards=%d: %v", tc.shards, err)
		}
		if got := f.ReadShards(); got != tc.want {
			t.Errorf("Shards=%d: ReadShards() = %d, want %d", tc.shards, got, tc.want)
		}
	}
}
