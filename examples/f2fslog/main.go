// f2fslog emulates the write behaviour of F2FS on zoned storage, the file
// system consumer devices use (paper §I, §II-B): up to six open logs (hot/
// warm/cold x node/data), each appending to its own zone, with frequent
// fsyncs because consumer systems lack power-loss protection.
//
// Because the device has only two write buffers for six active logs, log
// switches evict each other's buffered data — the premature-flush pathology
// of Fig. 6(b) — and fsyncs push sub-unit tails through the SLC secondary
// buffer. The example prints where the data went and what it cost.
package main

import (
	"fmt"
	"log"

	"github.com/conzone/conzone"
	"github.com/conzone/conzone/internal/sim"
)

// logStream is one F2FS log: a temperature class appending to its own zone.
type logStream struct {
	name     string
	zone     int
	offset   int64 // bytes written into the current zone
	writeSz  int64 // typical write granularity of this log
	fsyncEvy int   // fsync every N writes
	writes   int
}

func main() {
	// Reserve the first zone as a conventional zone (paper §III-E): F2FS
	// keeps its checkpoint/SIT/NAT metadata in an area it updates in
	// place, which sequential zones cannot serve.
	cfg := conzone.PaperConfig()
	cfg.FTL.ConventionalZones = 1
	dev, err := conzone.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	zoneBytes := dev.ZoneBytes()

	// Six logs on six sequential zones, F2FS-style. Node logs write small
	// (4-16 KiB, metadata blocks) and fsync often; data logs write larger
	// extents.
	logs := []*logStream{
		{name: "hot-node", zone: 1, writeSz: 4 << 10, fsyncEvy: 1},
		{name: "warm-node", zone: 2, writeSz: 8 << 10, fsyncEvy: 2},
		{name: "cold-node", zone: 3, writeSz: 16 << 10, fsyncEvy: 4},
		{name: "hot-data", zone: 4, writeSz: 48 << 10, fsyncEvy: 2},
		{name: "warm-data", zone: 5, writeSz: 96 << 10, fsyncEvy: 4},
		{name: "cold-data", zone: 6, writeSz: 384 << 10, fsyncEvy: 8},
	}
	for _, l := range logs {
		if err := dev.OpenZone(l.zone); err != nil {
			log.Fatal(err)
		}
	}

	// A deterministic, skewed workload: hot logs are picked more often.
	weights := []int{6, 4, 1, 8, 5, 2}
	rng := sim.NewRand(2026)
	totalW := 0
	for _, w := range weights {
		totalW += w
	}

	var appended int64
	var metaUpdates int
	const target = 64 << 20 // write 64 MiB of file-system traffic
	for appended < target {
		// Update the metadata area in place (NAT/SIT blocks in the
		// conventional zone) every ~128 KiB of data, as F2FS does when
		// checkpointing dirty segments.
		if appended >= int64(metaUpdates)*(128<<10) {
			slot := int64(metaUpdates%64) * 4096 // 64 rotating 4 KiB slots
			if err := dev.Write(slot, make([]byte, 4096)); err != nil {
				log.Fatalf("metadata update: %v", err)
			}
			if err := dev.FlushZone(0); err != nil {
				log.Fatal(err)
			}
			metaUpdates++
		}
		// Weighted pick of the next log to append to.
		r := int(rng.Int63n(int64(totalW)))
		li := 0
		for i, w := range weights {
			if r < w {
				li = i
				break
			}
			r -= w
		}
		l := logs[li]
		if l.offset+l.writeSz > zoneBytes {
			continue // this log's zone (segment) is full; F2FS would move on
		}
		off := int64(l.zone)*zoneBytes + l.offset
		if err := dev.Write(off, make([]byte, l.writeSz)); err != nil {
			log.Fatalf("%s: %v", l.name, err)
		}
		l.offset += l.writeSz
		l.writes++
		appended += l.writeSz
		if l.writes%l.fsyncEvy == 0 {
			// fsync: consumer systems issue synchronous writes (§II-A);
			// the zone's buffered tail is flushed, possibly prematurely.
			if err := dev.FlushZone(l.zone); err != nil {
				log.Fatal(err)
			}
		}
	}

	st := dev.Stats()
	fmt.Printf("F2FS-like workload: %d MiB over 6 logs + %d in-place metadata updates, virtual time %v\n",
		appended>>20, metaUpdates, dev.Now())
	fmt.Printf("%-10s %8s %12s\n", "log", "writes", "written")
	for _, l := range logs {
		fmt.Printf("%-10s %8d %9d KiB\n", l.name, l.writes, l.offset>>10)
	}
	fmt.Println()
	fmt.Printf("premature buffer evictions : %d (6 logs on 2 buffers)\n", st.FTL.PrematureFlushes)
	fmt.Printf("SLC-staged sectors         : %d\n", st.FTL.StagedSectors)
	fmt.Printf("combines back to TLC       : %d\n", st.FTL.Combines)
	fmt.Printf("direct program units       : %d\n", st.FTL.DirectPUs)
	fmt.Printf("write amplification        : %.3f\n", st.WAF)
	fmt.Printf("SLC GC collections         : %d (migrated %d sectors)\n",
		st.Staging.Collections, st.Staging.Migrated)

	// Checkpoint: F2FS reclaims segments by resetting their zones.
	for _, l := range logs {
		if err := dev.ResetZone(l.zone); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after checkpoint (all logs reset): %d zone resets\n", dev.Stats().FTL.ZoneResets)
}
