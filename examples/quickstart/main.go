// Quickstart: open a ConZone device, write and read a zone, and look at
// the internal statistics that make consumer zoned flash interesting —
// where the data physically went (direct program units vs the SLC
// secondary buffer), the write amplification, and the L2P cache behaviour.
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/conzone/conzone"
)

func main() {
	// The paper's §IV-A evaluation configuration: TLC, 2 channels x 2
	// chips, 96 KiB programming units, two 384 KiB write buffers, 1.5 GiB
	// of flash, 12 KiB of L2P cache.
	dev, err := conzone.Open(conzone.PaperConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %s, %d zones of %s\n",
		fmtBytes(dev.Capacity()), dev.NumZones(), fmtBytes(dev.ZoneBytes()))

	// Zoned devices are written sequentially within a zone. Write 1 MiB
	// at the start of zone 0 in 4 KiB-aligned chunks.
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := dev.Write(0, payload); err != nil {
		log.Fatal(err)
	}

	// Writes land in the volatile write buffer first; a flush (fsync)
	// pushes the sub-programming-unit tail through the SLC secondary
	// buffer.
	if err := dev.FlushZone(0); err != nil {
		log.Fatal(err)
	}

	got, err := dev.Read(0, len(payload))
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("read-back mismatch")
	}
	fmt.Println("read-back verified:", fmtBytes(int64(len(got))))

	st := dev.Stats()
	fmt.Printf("virtual time elapsed : %v\n", dev.Now())
	fmt.Printf("direct program units : %d (Fig. 3 path 1)\n", st.FTL.DirectPUs)
	fmt.Printf("SLC-staged sectors   : %d (Fig. 3 path 2)\n", st.FTL.StagedSectors)
	fmt.Printf("combines             : %d (Fig. 3 path 3)\n", st.FTL.Combines)
	fmt.Printf("write amplification  : %.3f\n", st.WAF)
	fmt.Printf("L2P cache            : %d hits, %d misses\n", st.Cache.Hits, st.Cache.Misses)

	// Zone management: report, finish, reset.
	z, _ := dev.Zone(0)
	fmt.Printf("zone 0: state=%v written=%s\n", z.State, fmtBytes(z.Written()*conzone.SectorSize))
	if err := dev.ResetZone(0); err != nil {
		log.Fatal(err)
	}
	z, _ = dev.Zone(0)
	fmt.Printf("zone 0 after reset: state=%v\n", z.State)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
