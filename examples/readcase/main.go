// readcase reproduces the paper's §IV-D case study through the public API:
// how the mapping mechanism (page vs hybrid) and the L2P miss search
// strategy (BITMAP vs MULTIPLE vs PINNED) shape 4 KiB random-read
// performance on a consumer zoned device with a 12 KiB L2P cache.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/conzone/conzone"
)

func main() {
	fmt.Println("Case study: read performance vs mapping internals (paper §IV-D)")

	// Part 1 (Fig. 7): page vs hybrid mapping over growing read ranges.
	fmt.Println("\n4 KiB random reads, fixed volume, growing range:")
	fmt.Printf("%-8s %-10s %10s %12s\n", "mapping", "range", "KIOPS", "p99")
	for _, pageMapping := range []bool{true, false} {
		name := "hybrid"
		if pageMapping {
			name = "page"
		}
		for _, rangeBytes := range []int64{1 << 20, 16 << 20, 1 << 30} {
			kiops, p99, err := randReadRun(pageMapping, conzone.Bitmap, 0, rangeBytes)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %-10s %10.1f %12v\n", name, fmtRange(rangeBytes), kiops, p99)
		}
	}

	// Part 2 (Fig. 8): the cost of discovering a missing entry's
	// granularity, at a cache deliberately too small for the working set.
	fmt.Println("\nL2P search strategies with a ~27% miss rate (1 GiB range):")
	fmt.Printf("%-10s %10s %12s\n", "strategy", "KIOPS", "p99")
	for _, s := range []conzone.Strategy{conzone.Bitmap, conzone.Multiple, conzone.Pinned} {
		// 186 four-byte entries for a 256-chunk working set = ~27% misses.
		kiops, p99, err := randReadRun(false, s, 186*4, 1<<30)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v %10.1f %12v\n", s, kiops, p99)
	}
	fmt.Println("\nBITMAP spends SRAM on a map-bits bitmap (one fetch per miss);")
	fmt.Println("MULTIPLE probes zone->chunk->page from flash (up to 3 fetches);")
	fmt.Println("PINNED keeps aggregated entries resident from creation.")
}

// randReadRun builds a fresh device, prefills a range, and measures 4 KiB
// random reads over it.
func randReadRun(pageMapping bool, s conzone.Strategy, cacheBytes int64, rangeBytes int64) (float64, time.Duration, error) {
	cfg := conzone.PaperConfig()
	cfg.FTL.DisableAggregation = pageMapping
	cfg.FTL.Search = s
	cfg.FTL.AggregateZones = false // chunk-level aggregation, as §IV-C
	if cacheBytes > 0 {
		cfg.FTL.L2PCacheBytes = cacheBytes
	}
	dev, err := conzone.Open(cfg)
	if err != nil {
		return 0, 0, err
	}
	f := dev.FTL()

	// Prefill the range sequentially (zone by zone) and warm the cache,
	// then measure.
	warm := conzone.Job{
		Name: "warm", Pattern: conzone.RandRead, BlockBytes: 4096, NumJobs: 1,
		RangeBytes: rangeBytes, TotalBytesPerJob: 8192 * 4096,
		PerOpOverhead: 15 * time.Microsecond, Seed: 7,
	}
	measured := warm
	measured.Name = "measured"
	measured.Seed = 11
	measured.TotalBytesPerJob = 16384 * 4096

	if err := prefill(dev, rangeBytes); err != nil {
		return 0, 0, err
	}
	// Start the jobs at the device's current virtual time so that the
	// measurement does not queue behind the prefill's flash operations.
	warm.StartAt = conzone.Time(dev.Now())
	wres, err := conzone.RunJob(f, warm)
	if err != nil {
		return 0, 0, err
	}
	measured.StartAt = warm.StartAt.Add(wres.Elapsed)
	res, err := conzone.RunJob(f, measured)
	if err != nil {
		return 0, 0, err
	}
	return res.KIOPS(), res.Lat.P99, nil
}

// prefill writes [0, rangeBytes) sequentially through the byte API.
func prefill(dev *conzone.Device, rangeBytes int64) error {
	const block = 384 << 10
	zone := dev.ZoneBytes()
	for pos := int64(0); pos < rangeBytes; {
		n := int64(block)
		if b := pos - pos%zone + zone; pos+n > b {
			n = b - pos
		}
		if pos+n > rangeBytes {
			n = rangeBytes - pos
		}
		if err := dev.Write(pos, make([]byte, n)); err != nil {
			return err
		}
		pos += n
	}
	return dev.Flush()
}

func fmtRange(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dGiB", n>>30)
	default:
		return fmt.Sprintf("%dMiB", n>>20)
	}
}
