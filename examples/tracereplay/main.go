// tracereplay shows the trace facility: capture a workload as a portable
// trace, save it, and replay it bit-identically against two different
// device models (ConZone and the FEMU personality) to compare how their
// internals cost the same I/O stream.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"github.com/conzone/conzone"
)

func main() {
	// Synthesise an fsync-heavy consumer trace: three zones receiving
	// interleaved 48 KiB appends with periodic flushes and a reset.
	var recs []conzone.TraceRecord
	at := time.Duration(0)
	offsets := map[int32]int64{}
	for i := 0; i < 600; i++ {
		zone := int32(i % 3)
		lba := int64(zone)*4096 + offsets[zone]
		recs = append(recs, conzone.TraceRecord{
			At: at, Op: conzone.TraceWrite, LBA: lba, Sectors: 12,
		})
		offsets[zone] += 12
		at += 50 * time.Microsecond
		if i%30 == 29 {
			recs = append(recs, conzone.TraceRecord{At: at, Op: conzone.TraceFlush})
			at += 10 * time.Microsecond
		}
	}
	recs = append(recs, conzone.TraceRecord{At: at, Op: conzone.TraceReset, Zone: 0})

	// Round-trip through the binary format, as a tool would via files.
	var buf bytes.Buffer
	w := conzone.NewTraceWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	encoded := buf.Len()
	loaded, err := conzone.NewTraceReader(&buf).ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d records, %d bytes encoded\n", len(loaded), encoded)

	// Replay against both device models built from the same media config.
	// The QLC preset has power-of-two superblocks, so ConZone and the
	// FEMU personality expose identical 16 MiB zone layouts and one trace
	// fits both.
	cfg := conzone.QLCConfig()
	cz, err := conzone.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	femu, err := conzone.NewFEMU(cfg)
	if err != nil {
		log.Fatal(err)
	}

	resCZ, err := conzone.ReplayTrace(cz.FTL(), loaded)
	if err != nil {
		log.Fatal(err)
	}
	resFM, err := conzone.ReplayTrace(femu, loaded)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %16s %16s\n", "", "ConZone", "FEMU personality")
	fmt.Printf("%-22s %16v %16v\n", "virtual completion",
		time.Duration(resCZ.LastDone).Round(time.Microsecond),
		time.Duration(resFM.LastDone).Round(time.Microsecond))
	st := cz.Stats()
	fmt.Printf("%-22s %16d %16s\n", "premature flushes", st.FTL.PrematureFlushes, "n/a (per-zone bufs)")
	fmt.Printf("%-22s %16d %16s\n", "SLC staged sectors", st.FTL.StagedSectors, "n/a (no SLC)")
	fmt.Printf("%-22s %16.3f %16s\n", "WAF", st.WAF, "1.000 by design")
	fmt.Println()
	fmt.Println("The same trace costs differently because FEMU's ZNS mode models")
	fmt.Println("neither the shared write buffers nor the SLC secondary buffer")
	fmt.Println("(paper Table I) - exactly the gap ConZone exists to close.")
}
