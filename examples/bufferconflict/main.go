// bufferconflict demonstrates the paper's Fig. 6(b) pathology through the
// public API: two writers on zones that share a write buffer (same parity
// under the zone-mod-buffers mapping) evict each other's sub-unit data to
// SLC on every switch, costing both bandwidth and endurance. The same
// writers on different-parity zones sail through.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/conzone/conzone"
)

func main() {
	fmt.Println("Write-buffer conflicts on consumer zoned flash (paper Fig. 6(b))")
	fmt.Println("2 write buffers; buffer(zone) = zone mod 2; dual writers, 48 KiB writes")
	fmt.Println()

	conflictBW, conflictWAF, evA := run(1, 3) // both odd: same buffer
	cleanBW, cleanWAF, evB := run(1, 2)       // different parity

	fmt.Printf("%-22s %14s %8s %12s\n", "case", "bandwidth", "WAF", "evictions")
	fmt.Printf("%-22s %10.0f MiB/s %8.3f %12d\n", "conflict (zones 1,3)", conflictBW, conflictWAF, evA)
	fmt.Printf("%-22s %10.0f MiB/s %8.3f %12d\n", "no conflict (zones 1,2)", cleanBW, cleanWAF, evB)
	fmt.Println()
	fmt.Printf("avoiding the conflict: %+.0f%% bandwidth, %.0f%% less write amplification\n",
		(cleanBW/conflictBW-1)*100, (1-cleanWAF/conflictWAF)*100)
	fmt.Println("(the paper reports ~65% bandwidth and ~24% WA; see EXPERIMENTS.md)")
}

// run writes one zone's worth per thread with 48 KiB granularity, placing
// the two threads on the given zones, and reports bandwidth, WAF and
// premature buffer evictions.
func run(zoneA, zoneB int) (bw, waf float64, evictions int64) {
	dev, err := conzone.Open(conzone.PaperConfig())
	if err != nil {
		log.Fatal(err)
	}
	f := dev.FTL()
	zoneBytes := dev.ZoneBytes()
	res, err := conzone.RunJob(f, conzone.Job{
		Name:       "fig6b",
		Pattern:    conzone.SeqWrite,
		BlockBytes: 48 << 10,
		NumJobs:    2,
		RangeBytes: dev.Capacity(),
		ThreadOffsets: []int64{
			int64(zoneA) * zoneBytes,
			int64(zoneB) * zoneBytes,
		},
		TotalBytesPerJob: 16320 << 10, // one zone, 48 KiB-aligned
		PerOpOverhead:    6 * time.Microsecond,
		FlushAtEnd:       true,
		Seed:             17,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := dev.Stats()
	return res.BandwidthMiBps, st.WAF, st.Buffers.Evictions
}
