package conzone

import (
	"net/http"
	"time"

	"github.com/conzone/conzone/internal/telemetry"
)

// Virtual-time telemetry: the public face of internal/telemetry. A device
// with sampling enabled records a unified Stats snapshot (plus the interval
// delta) every SampleInterval of *simulated* time into a fixed ring —
// entirely passively, from the same clock advance every I/O already
// performs, with zero steady-state heap allocations. The series, the
// per-zone heat tables and the live scrape endpoint below are how the
// paper-style "WAF over time" and "GC activity over time" curves are
// produced; see the Observability section of the README.

// Telemetry series types re-exported for consumers.
type (
	// Sample is one point of the virtual-time series: cumulative Stats
	// plus the delta since the previous sample.
	Sample = telemetry.Sample
	// ZoneTable is the spatial snapshot: per-zone and per-SLC-superblock
	// heat rows at one virtual instant.
	ZoneTable = telemetry.ZoneTable
	// ZoneHeat is one zone's heat row.
	ZoneHeat = telemetry.ZoneHeat
	// SLCHeat is one SLC staging superblock's heat row.
	SLCHeat = telemetry.SLCHeat
)

// EnableSampling arms the virtual-time sampler: every interval of simulated
// time (measured on the device's virtual clock, not wall time) the device
// records one Sample into a ring of ringSize entries (<= 0 uses the default
// of 4096). The first sample boundary lands one interval after the current
// virtual instant. Enabling again replaces the sampler and clears the
// series. Sampling costs one integer comparison per clock advance while no
// boundary has been crossed, and zero heap allocations when one has.
func (d *Device) EnableSampling(interval time.Duration, ringSize int) error {
	smp, err := telemetry.NewSampler(interval, ringSize)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	smp.Prime(d.now, telemetry.Collect(d.f))
	d.smp = smp
	return nil
}

// DisableSampling detaches the sampler, discarding the retained series and
// returning the clock-advance path to a single nil check.
func (d *Device) DisableSampling() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.smp = nil
}

// SampleInterval returns the sampler's virtual interval, 0 when sampling is
// disabled.
func (d *Device) SampleInterval() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.smp.Interval()
}

// Series returns the retained samples, oldest first (nil when sampling is
// disabled or nothing has been recorded yet).
func (d *Device) Series() []Sample {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.smp.Samples()
}

// SamplesRecorded returns how many samples were ever recorded and how many
// the ring has overwritten.
func (d *Device) SamplesRecorded() (recorded, dropped int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.smp.Recorded(), d.smp.Dropped()
}

// Heatmap takes the spatial snapshot: one heat row per zone (state, write
// pointer fill, live-data fraction, staged sectors, superblock wear) and
// one per SLC staging superblock. Queued asynchronous commands are
// dispatched first so the table is current.
func (d *Device) Heatmap() ZoneTable {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.advance(d.h.Kick())
	return telemetry.CollectZones(d.f, d.now)
}

// ObservabilityHandler returns the device's live scrape endpoint, ready for
// http.ListenAndServe or an httptest server:
//
//	/metrics          Prometheus text exposition (unified stats, stage
//	                  latencies, per-zone heat gauges)
//	/timeseries.json  the retained virtual-time series
//	/zones.json       the spatial snapshot as JSON
//	/zones.txt        textual heatmaps
//	/debug/pprof/     live Go profiles of the emulator process
//
// Handlers snapshot under the device lock per request; serving while a
// workload runs is safe.
func (d *Device) ObservabilityHandler() *http.ServeMux {
	return telemetry.Handler(d)
}

// Compile-time check that Device feeds the scrape endpoint.
var _ telemetry.Source = (*Device)(nil)
