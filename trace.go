package conzone

import (
	"io"

	"github.com/conzone/conzone/internal/trace"
	"github.com/conzone/conzone/internal/workload"
)

// I/O trace support: record device operations to a compact binary (or
// editable text) format and replay them against any device model. See
// cmd/conzone-trace for the command-line front end.
type (
	// TraceRecord is one timed device operation.
	TraceRecord = trace.Record
	// TraceOp is the operation kind of a record.
	TraceOp = trace.Op
	// TraceWriter encodes records in the binary trace format.
	TraceWriter = trace.Writer
	// TraceReader decodes the binary trace format.
	TraceReader = trace.Reader
	// ReplayResult summarises a trace replay.
	ReplayResult = trace.ReplayResult
)

// Trace operations.
const (
	TraceRead  = trace.OpRead
	TraceWrite = trace.OpWrite
	TraceReset = trace.OpReset
	TraceFlush = trace.OpFlush
)

// NewTraceWriter wraps w with the binary trace encoder.
func NewTraceWriter(w io.Writer) *TraceWriter { return trace.NewWriter(w) }

// NewTraceReader wraps r with the binary trace decoder.
func NewTraceReader(r io.Reader) *TraceReader { return trace.NewReader(r) }

// EncodeTraceText writes records in the human-editable line format.
func EncodeTraceText(w io.Writer, records []TraceRecord) error {
	return trace.EncodeText(w, records)
}

// DecodeTraceText parses the line format.
func DecodeTraceText(r io.Reader) ([]TraceRecord, error) { return trace.DecodeText(r) }

// ReplayTrace drives a device with the records, preserving causality.
func ReplayTrace(dev workload.Device, records []TraceRecord) (ReplayResult, error) {
	return trace.Replay(dev, records)
}
