package conzone

import (
	"bytes"
	"errors"
	"testing"

	"github.com/conzone/conzone/internal/fault"
)

// TestReadOnlyDegradationAuditClean drives a device with guaranteed erase
// failures until its superblock pool drains to read-only, verifying at each
// cycle that acknowledged data stays readable — and, crucially, that the
// device is still audit-clean afterwards: a failed write must leave media,
// mapping, write pointers and the write buffer mutually consistent (the
// failing request's own un-acknowledged sectors are rolled back out of the
// buffer rather than left stranded).
func TestReadOnlyDegradationAuditClean(t *testing.T) {
	cfg := SmallConfig()
	cfg.FTL.SpareSuperblocks = 1
	cfg.FTL.Faults = &fault.Config{Seed: 11, TLC: fault.Probabilities{EraseFail: 1}}
	dev, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	zb := int64(512 * 4096)
	data := bytes.Repeat([]byte{0xAB}, 512*1024)

	degraded := false
	for i := 0; i < 50 && !degraded; i++ {
		if err := dev.Write(0, data); err != nil {
			if !errors.Is(err, fault.ErrReadOnly) {
				t.Fatalf("cycle %d: write: %v", i, err)
			}
			degraded = true
			break
		}
		if err := dev.FlushZone(0); err != nil && !errors.Is(err, fault.ErrReadOnly) {
			t.Fatalf("cycle %d: flush: %v", i, err)
		}
		got, err := dev.Read(0, len(data))
		if err != nil {
			t.Fatalf("cycle %d: read: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("cycle %d: acknowledged data unreadable", i)
		}
		if err := dev.ResetZone(0); err != nil && !errors.Is(err, fault.ErrReadOnly) {
			t.Fatalf("cycle %d: reset: %v", i, err)
		}
		degraded = dev.FTL().ReadOnly()
	}
	if !degraded {
		t.Fatal("device never degraded to read-only with every erase failing")
	}
	st := dev.FTL().Stats()
	if st.LostAckSectors != 0 {
		t.Fatalf("lost %d acknowledged sectors", st.LostAckSectors)
	}
	if st.EraseFails == 0 || st.RetiredSuperblocks == 0 {
		t.Fatalf("degradation without failures? stats = %+v", st)
	}

	// Reads keep working; writes are rejected with the typed sentinel.
	if err := dev.Write(1*zb, data[:4096]); !errors.Is(err, fault.ErrReadOnly) {
		t.Fatalf("write in read-only state: err = %v, want fault.ErrReadOnly", err)
	}
	if _, err := dev.Read(1*zb, 4096); err != nil {
		t.Fatalf("read in read-only state: %v", err)
	}
	if err := dev.CheckInvariants(); err != nil {
		t.Fatalf("audit after read-only degradation: %v", err)
	}
}
