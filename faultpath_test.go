package conzone

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/conzone/conzone/internal/fault"
)

// TestReadOnlyDegradationAuditClean drives a device with guaranteed erase
// failures until its superblock pool drains to read-only, verifying at each
// cycle that acknowledged data stays readable — and, crucially, that the
// device is still audit-clean afterwards: a failed write must leave media,
// mapping, write pointers and the write buffer mutually consistent (the
// failing request's own un-acknowledged sectors are rolled back out of the
// buffer rather than left stranded).
func TestReadOnlyDegradationAuditClean(t *testing.T) {
	cfg := SmallConfig()
	cfg.FTL.SpareSuperblocks = 1
	cfg.FTL.Faults = &fault.Config{Seed: 11, TLC: fault.Probabilities{EraseFail: 1}}
	dev, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	zb := int64(512 * 4096)
	data := bytes.Repeat([]byte{0xAB}, 512*1024)

	degraded := false
	for i := 0; i < 50 && !degraded; i++ {
		if err := dev.Write(0, data); err != nil {
			if !errors.Is(err, fault.ErrReadOnly) {
				t.Fatalf("cycle %d: write: %v", i, err)
			}
			degraded = true
			break
		}
		if err := dev.FlushZone(0); err != nil && !errors.Is(err, fault.ErrReadOnly) {
			t.Fatalf("cycle %d: flush: %v", i, err)
		}
		got, err := dev.Read(0, len(data))
		if err != nil {
			t.Fatalf("cycle %d: read: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("cycle %d: acknowledged data unreadable", i)
		}
		if err := dev.ResetZone(0); err != nil && !errors.Is(err, fault.ErrReadOnly) {
			t.Fatalf("cycle %d: reset: %v", i, err)
		}
		degraded = dev.FTL().ReadOnly()
	}
	if !degraded {
		t.Fatal("device never degraded to read-only with every erase failing")
	}
	st := dev.FTL().Stats()
	if st.LostAckSectors != 0 {
		t.Fatalf("lost %d acknowledged sectors", st.LostAckSectors)
	}
	if st.EraseFails == 0 || st.RetiredSuperblocks == 0 {
		t.Fatalf("degradation without failures? stats = %+v", st)
	}

	// Reads keep working; writes are rejected with the typed sentinel.
	if err := dev.Write(1*zb, data[:4096]); !errors.Is(err, fault.ErrReadOnly) {
		t.Fatalf("write in read-only state: err = %v, want fault.ErrReadOnly", err)
	}
	if _, err := dev.Read(1*zb, 4096); err != nil {
		t.Fatalf("read in read-only state: %v", err)
	}
	if err := dev.CheckInvariants(); err != nil {
		t.Fatalf("audit after read-only degradation: %v", err)
	}
}

// TestFlushBarrierDurableAcrossRemount pins the flush-path durability
// contract: a nil return from FlushZone means the zone's acknowledged data
// is on media and survives an abrupt power cut, while acknowledged data
// that was never flushed may legally vanish — but only back to the
// recovered write pointer, never to garbage.
func TestFlushBarrierDurableAcrossRemount(t *testing.T) {
	dev, err := Open(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	zb := dev.ZoneBytes()
	flushed := bytes.Repeat([]byte{0x5A}, int(5*SectorSize))
	volatile := bytes.Repeat([]byte{0xA5}, int(5*SectorSize))
	if err := dev.Write(0, flushed); err != nil {
		t.Fatal(err)
	}
	if err := dev.FlushZone(0); err != nil {
		t.Fatalf("flush of zone 0: %v", err)
	}
	if err := dev.Write(zb, volatile); err != nil {
		t.Fatal(err)
	}

	// Cut power without warning and remount.
	if err := dev.Remount(); err != nil {
		t.Fatalf("remount: %v", err)
	}
	if st := dev.FTL().Stats(); st.LostAckSectors != 0 {
		t.Fatalf("lost %d acknowledged sectors across remount", st.LostAckSectors)
	}
	if err := dev.CheckInvariants(); err != nil {
		t.Fatalf("audit after remount: %v", err)
	}

	// The flushed run survived, write pointer included.
	z0, _ := dev.Zone(0)
	if z0.Written() != 5 {
		t.Fatalf("zone 0 recovered WP = %d sectors, want 5", z0.Written())
	}
	got, err := dev.Read(0, len(flushed))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, flushed) {
		t.Fatal("flushed data did not survive the remount")
	}

	// The unflushed run was volatile-only: the zone recovers empty and the
	// sectors read back as unwritten — not as stale garbage.
	z1, _ := dev.Zone(1)
	if z1.Written() != 0 {
		t.Fatalf("zone 1 recovered WP = %d sectors, want 0 (never flushed)", z1.Written())
	}
	got, err = dev.Read(zb, len(volatile))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("unflushed sector byte %d = %#x, want 0", i, b)
		}
	}

	// The recovered device keeps working at the recovered write pointers.
	more := bytes.Repeat([]byte{0x3C}, int(3*SectorSize))
	if err := dev.Write(5*SectorSize, more); err != nil {
		t.Fatalf("write after remount: %v", err)
	}
	if err := dev.FlushZone(0); err != nil {
		t.Fatal(err)
	}
	got, err = dev.Read(5*SectorSize, len(more))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, more) {
		t.Fatal("post-remount write unreadable")
	}
}

// TestTornFlushReturnsPowerLoss pins the other half of the contract: when
// the cut tears the flush itself, FlushZone must return ErrPowerLoss — a
// nil return with the data still volatile-only would be a lie the host
// could never detect.
func TestTornFlushReturnsPowerLoss(t *testing.T) {
	dev, err := Open(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x77}, int(5*SectorSize))
	if err := dev.Write(0, data); err != nil {
		t.Fatal(err)
	}
	// Arm the cut just past the current instant: the flush's program is the
	// first media operation to straddle it.
	dev.ArmPowerCut(Time(dev.Now()) + Time(time.Nanosecond))
	err = dev.FlushZone(0)
	if err == nil {
		t.Fatal("FlushZone returned nil with acknowledged data still volatile-only")
	}
	if !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("torn flush: err = %v, want ErrPowerLoss", err)
	}
	if !dev.PowerLost() {
		t.Fatal("device alive after its cut fired")
	}
	// Every subsequent command fails the same way until a remount.
	if err := dev.Write(5*SectorSize, data[:SectorSize]); !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("write after cut: %v", err)
	}
	if _, err := dev.Read(0, int(SectorSize)); !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("read after cut: %v", err)
	}

	if err := dev.Remount(); err != nil {
		t.Fatalf("remount: %v", err)
	}
	if st := dev.FTL().Stats(); st.LostAckSectors != 0 {
		t.Fatalf("lost %d acknowledged sectors", st.LostAckSectors)
	}
	if err := dev.CheckInvariants(); err != nil {
		t.Fatalf("audit after remount: %v", err)
	}
	// The torn flush never reached media: the zone recovers empty, and the
	// device accepts the data again from the start.
	z0, _ := dev.Zone(0)
	if z0.Written() != 0 {
		t.Fatalf("zone 0 recovered WP = %d sectors after torn flush, want 0", z0.Written())
	}
	if err := dev.Write(0, data); err != nil {
		t.Fatalf("write after remount: %v", err)
	}
	if err := dev.FlushZone(0); err != nil {
		t.Fatalf("flush after remount: %v", err)
	}
	got, err := dev.Read(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("retried data unreadable after recovery")
	}
}
