package conzone

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

// fillPattern builds n sectors of recognisable data keyed by (zone, tag).
func fillPattern(zone, tag, nSectors int) []byte {
	b := make([]byte, nSectors*int(SectorSize))
	for i := range b {
		b[i] = byte(zone*31 + tag*7 + i%127 + 1)
	}
	return b
}

// TestSaveImageOpenImageRoundTrip persists the NAND media to a file-backed
// image and reopens it: everything a flush barrier made durable reads back,
// zone write pointers match, and the reopened device is audit-clean and
// writable. A reset before the save must stay a reset after the load.
func TestSaveImageOpenImageRoundTrip(t *testing.T) {
	cfg := SmallConfig()
	dev, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	zb := dev.ZoneBytes()
	data0 := fillPattern(0, 1, 30)
	data2 := fillPattern(2, 1, 7)
	if err := dev.Write(0, data0); err != nil {
		t.Fatal(err)
	}
	if err := dev.FlushZone(0); err != nil {
		t.Fatal(err)
	}
	// Zone 1 is written, flushed, then reset: the image must not resurrect it.
	if err := dev.Write(zb, fillPattern(1, 1, 12)); err != nil {
		t.Fatal(err)
	}
	if err := dev.FlushZone(1); err != nil {
		t.Fatal(err)
	}
	if err := dev.ResetZone(1); err != nil {
		t.Fatal(err)
	}
	if err := dev.Write(2*zb, data2); err != nil {
		t.Fatal(err)
	}
	if err := dev.FlushZone(2); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "conzone.img")
	if err := dev.SaveImage(path); err != nil {
		t.Fatalf("save image: %v", err)
	}

	re, err := OpenImage(cfg, path)
	if err != nil {
		t.Fatalf("open image: %v", err)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatalf("audit after image load: %v", err)
	}
	for _, c := range []struct {
		zone    int
		written int64
	}{{0, 30}, {1, 0}, {2, 7}} {
		z, err := re.Zone(c.zone)
		if err != nil {
			t.Fatal(err)
		}
		if z.Written() != c.written {
			t.Fatalf("zone %d recovered WP = %d sectors, want %d", c.zone, z.Written(), c.written)
		}
	}
	got, err := re.Read(0, len(data0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data0) {
		t.Fatal("zone 0 data did not survive the image round-trip")
	}
	got, err = re.Read(2*zb, len(data2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data2) {
		t.Fatal("zone 2 data did not survive the image round-trip")
	}
	got, err = re.Read(zb, int(3*SectorSize))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("reset zone byte %d = %#x after image load, want 0", i, b)
		}
	}
	// The reopened device keeps working.
	more := fillPattern(1, 2, 4)
	if err := re.Write(zb, more); err != nil {
		t.Fatalf("write on reopened device: %v", err)
	}
	if err := re.FlushZone(1); err != nil {
		t.Fatal(err)
	}
	if got, err := re.Read(zb, len(more)); err != nil || !bytes.Equal(got, more) {
		t.Fatalf("reopened device write/read: %v", err)
	}

	// A geometry mismatch is refused outright.
	bad := SmallConfig()
	bad.Geometry.BlocksPerChip++
	if _, err := OpenImage(bad, path); err == nil {
		t.Fatal("image opened under a different geometry")
	}
}

// runDeterministicOps drives one device through a fixed write/flush/reset
// schedule, remounting after op 'remountAt' (-1 for never), and returns a
// transcript of per-op results for comparison.
func runDeterministicOps(t *testing.T, dev *Device, nOps, remountAt int) []string {
	t.Helper()
	var log []string
	wp := make([]int64, dev.NumZones())
	zb := dev.ZoneBytes()
	for i := 0; i < nOps; i++ {
		zone := i % 4
		switch {
		case i%17 == 16:
			err := dev.ResetZone(zone)
			log = append(log, fmt.Sprintf("reset z%d: %v", zone, err))
			if err == nil {
				wp[zone] = 0
			}
		default:
			n := int64(4 + i%8)
			if left := dev.ZoneBytes()/SectorSize - wp[zone]; n > left {
				n = left
			}
			if n <= 0 {
				continue
			}
			data := fillPattern(zone, i, int(n))
			err := dev.Write(int64(zone)*zb+wp[zone]*SectorSize, data)
			log = append(log, fmt.Sprintf("write z%d+%d x%d: %v", zone, wp[zone], n, err))
			if err != nil {
				continue
			}
			wp[zone] += n
			err = dev.FlushZone(zone)
			log = append(log, fmt.Sprintf("flush z%d: %v", zone, err))
		}
		if i == remountAt {
			if err := dev.Remount(); err != nil {
				t.Fatalf("remount after op %d: %v", i, err)
			}
		}
	}
	return log
}

// TestFaultStreamDeterministicAcrossRemount: with a seeded fault injector,
// a run that crashes at a barrier and remounts must see exactly the fault
// sequence an uninterrupted run sees — same per-op results, same fault
// counters, same final media state. This is what fault.Snapshot/Restore
// across ftl.Recover buys.
func TestFaultStreamDeterministicAcrossRemount(t *testing.T) {
	cfg := SmallConfig()
	cfg.FTL.SpareSuperblocks = 2
	cfg.FTL.Faults = &FaultConfig{
		Seed: 0xD373,
		TLC:  FaultProbabilities{ProgramFail: 0.15},
	}
	const nOps = 50
	devA, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	devB, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	logA := runDeterministicOps(t, devA, nOps, -1)
	logB := runDeterministicOps(t, devB, nOps, 24)
	if len(logA) != len(logB) {
		t.Fatalf("transcript lengths diverged: %d vs %d", len(logA), len(logB))
	}
	for i := range logA {
		if logA[i] != logB[i] {
			t.Fatalf("op result %d diverged:\n  uninterrupted: %s\n  remounted:     %s", i, logA[i], logB[i])
		}
	}
	sa, sb := devA.FTL().Stats(), devB.FTL().Stats()
	if sa.ProgramFails != sb.ProgramFails || sa.EraseFails != sb.EraseFails ||
		sa.RetiredSuperblocks != sb.RetiredSuperblocks {
		t.Fatalf("fault counters diverged:\n  uninterrupted: pf=%d ef=%d retired=%d\n  remounted:     pf=%d ef=%d retired=%d",
			sa.ProgramFails, sa.EraseFails, sa.RetiredSuperblocks,
			sb.ProgramFails, sb.EraseFails, sb.RetiredSuperblocks)
	}
	if sb.LostAckSectors != 0 {
		t.Fatalf("remounted run lost %d acknowledged sectors", sb.LostAckSectors)
	}
	// Final media state must agree wherever both accepted the data.
	zb := devA.ZoneBytes()
	for zone := 0; zone < 4; zone++ {
		za, _ := devA.Zone(zone)
		zbi, _ := devB.Zone(zone)
		if za.Written() != zbi.Written() {
			t.Fatalf("zone %d WP diverged: %d vs %d", zone, za.Written(), zbi.Written())
		}
		if za.Written() == 0 {
			continue
		}
		n := int(za.Written() * SectorSize)
		ga, err := devA.Read(int64(zone)*zb, n)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := devB.Read(int64(zone)*zb, n)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ga, gb) {
			t.Fatalf("zone %d contents diverged after remount", zone)
		}
	}
	if err := devB.CheckInvariants(); err != nil {
		t.Fatalf("remounted device audit: %v", err)
	}
}

// TestRemountPreservesQueueLayout: a remount rebuilds the host controller
// with the queue configuration in effect, not the defaults.
func TestRemountPreservesQueueLayout(t *testing.T) {
	dev, err := Open(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.ConfigureQueues(2, 8); err != nil {
		t.Fatal(err)
	}
	if err := dev.Remount(); err != nil {
		t.Fatal(err)
	}
	if got := dev.Host().Queues(); got != 2 {
		t.Fatalf("queues after remount = %d, want 2", got)
	}
	cfg := dev.Host().Configuration()
	if cfg.Queues != 2 || cfg.Depth != 8 {
		t.Fatalf("queue configuration after remount = %+v, want {2 8}", cfg)
	}
}
