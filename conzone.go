// Package conzone is a software emulator of consumer-grade zoned flash
// storage, reproducing the system described in "ConZone: A Zoned Flash
// Storage Emulator for Consumer Devices" (DATE 2025).
//
// The emulator models the internal hardware that distinguishes consumer
// zoned devices from enterprise ZNS SSDs: a small number of shared volatile
// write buffers (premature flushes on zone conflicts), an SLC-mode block
// region used as a secondary write buffer with 4 KiB partial programming, a
// hybrid L2P mapping table whose entries aggregate to chunk or zone
// granularity, a byte-budgeted L2P cache with three miss-handling
// strategies, and composite garbage collection. Timing follows a
// discrete-event model with per-chip and per-channel resource reservation
// and the paper's Table-II media latencies.
//
// # Quick start
//
//	dev, err := conzone.Open(conzone.PaperConfig())
//	if err != nil { ... }
//	err = dev.Write(0, data)             // sequential, 4 KiB-aligned
//	buf, err := dev.Read(0, len(data))
//	fmt.Println(dev.Now(), dev.WAF())
//
// Every operation advances the device's virtual clock by the simulated
// hardware time; no wall-clock time is consumed. For experiment-grade
// control (explicit virtual timestamps, multi-threaded workloads), use
// WriteAt/ReadAt or the workload runner in this package.
package conzone

import (
	"fmt"
	"sync"
	"time"

	"github.com/conzone/conzone/internal/check"
	"github.com/conzone/conzone/internal/config"
	"github.com/conzone/conzone/internal/confzns"
	"github.com/conzone/conzone/internal/fault"
	"github.com/conzone/conzone/internal/femu"
	"github.com/conzone/conzone/internal/ftl"
	"github.com/conzone/conzone/internal/host"
	"github.com/conzone/conzone/internal/legacy"
	"github.com/conzone/conzone/internal/nand"
	"github.com/conzone/conzone/internal/obs"
	"github.com/conzone/conzone/internal/sim"
	"github.com/conzone/conzone/internal/telemetry"
	"github.com/conzone/conzone/internal/units"
	"github.com/conzone/conzone/internal/workload"
	"github.com/conzone/conzone/internal/zns"
)

// SectorSize is the logical block size of the device: 4 KiB.
const SectorSize = units.Sector

// Re-exported configuration types. A Config fully describes the media
// geometry, the timing table and the FTL parameters of every device model
// this module can build (ConZone, Legacy, and the FEMU and ConfZNS
// personalities).
type (
	// Config bundles geometry, latencies and per-model parameters.
	Config = config.DeviceConfig
	// Geometry is the physical NAND organisation.
	Geometry = nand.Geometry
	// LatencyTable holds per-media operation latencies (paper Table II).
	LatencyTable = nand.LatencyTable
	// Media is a flash cell type.
	Media = nand.Media
	// FTLParams configures the ConZone FTL.
	FTLParams = ftl.Params
	// Strategy selects the L2P miss search strategy.
	Strategy = ftl.Strategy
	// ZoneInfo is a host-visible zone descriptor.
	ZoneInfo = zns.Zone
	// ZoneState is the NVMe-style zone condition.
	ZoneState = zns.State
	// Time is a virtual-time instant.
	Time = sim.Time
)

// Media constants.
const (
	SLC = nand.SLCMode
	TLC = nand.TLC
	QLC = nand.QLC
)

// L2P search strategies (paper §III-C, Fig. 8).
const (
	Bitmap   = ftl.Bitmap
	Multiple = ftl.Multiple
	Pinned   = ftl.Pinned
)

// Fault-model types re-exported for robustness experiments: fill
// FTLParams.Faults with a FaultConfig to make the simulated media fail.
type (
	// FaultConfig parameterizes the deterministic NAND fault model.
	FaultConfig = fault.Config
	// FaultProbabilities holds one media type's per-op failure rates.
	FaultProbabilities = fault.Probabilities
	// FaultScript deterministically fails one block's Nth operation.
	FaultScript = fault.Script
	// FaultOp identifies a scriptable media operation.
	FaultOp = fault.Op
	// HostStatus classifies a completion's outcome (NVMe-style status).
	HostStatus = host.Status
)

// Scriptable fault operations.
const (
	FaultProgram = fault.OpProgram
	FaultErase   = fault.OpErase
	FaultRead    = fault.OpRead
)

// Completion status codes.
const (
	StatusOK         = host.StatusOK
	StatusInvalid    = host.StatusInvalid
	StatusWriteFault = host.StatusWriteFault
	StatusMediaError = host.StatusMediaError
	StatusReadOnly   = host.StatusReadOnly
	StatusInternal   = host.StatusInternal
)

// Robustness sentinels, for errors.Is checks on I/O errors.
var (
	// ErrReadOnly reports that the device has degraded to read-only
	// operation: its spare superblocks are exhausted, so write-class
	// commands are rejected while reads keep working.
	ErrReadOnly = fault.ErrReadOnly
	// ErrUncorrectable reports a read that stayed uncorrectable after the
	// ECC read-retry budget.
	ErrUncorrectable = nand.ErrUncorrectable
)

// PaperConfig returns the paper's §IV-A evaluation configuration.
func PaperConfig() Config { return config.Paper() }

// SmallConfig returns a fast, scaled-down configuration for tests and
// examples.
func SmallConfig() Config { return config.Small() }

// QLCConfig returns a QLC variant whose zones are naturally power-of-two.
func QLCConfig() Config { return config.QLC() }

// LoadConfig reads a JSON configuration saved with Config.Save.
func LoadConfig(path string) (Config, error) { return config.Load(path) }

// DefaultLatencies returns the paper's Table II timing values.
func DefaultLatencies() LatencyTable { return nand.DefaultLatencies() }

// Stats is a unified snapshot of a ConZone device's counters: every
// subsystem's counter block (FTL, L2P cache, NAND, SLC staging, write
// buffers, fault injector), the derived WAF and miss-ratio gauges, the
// robustness counters (grown-bad blocks, power cuts, recoveries) and the
// point-in-time Occupancy gauges. Stats.Delta subtracts two snapshots for
// interval reporting; internal/telemetry owns the definition so the
// virtual-time sampler, the exporters and this public API can never drift
// apart.
type Stats = telemetry.Stats

// Occupancy holds the point-in-time fill gauges inside a Stats snapshot.
type Occupancy = telemetry.Occupancy

// Device is a thread-safe ConZone device with a byte-granular convenience
// API and an internal virtual clock. All byte offsets and lengths must be
// multiples of SectorSize.
//
// Every operation — including the traditional synchronous methods — flows
// through the device's multi-queue host interface (internal/host): a
// synchronous call is simply the queue-depth-1 special case. Asynchronous
// submitters use Submit/Poll/Wait or an AsyncWriter to keep multiple
// commands outstanding; see the "Async I/O" section of the README.
type Device struct {
	mu  sync.Mutex
	f   *ftl.FTL
	h   *host.Controller
	now sim.Time

	// smp is the virtual-time telemetry sampler (nil until EnableSampling);
	// advance polls it with a nil-safe comparison on every clock movement.
	smp *telemetry.Sampler
}

// Open builds a ConZone device from the configuration, with the default
// host-interface queue layout (use ConfigureQueues to change it).
func Open(cfg Config) (*Device, error) {
	// Validate the latency table against the geometry up front: a missing
	// or zero media entry must be a descriptive configuration error here,
	// not a zero-latency simulation (or a crash) deep inside the first I/O.
	if err := cfg.Latency.ValidateFor(cfg.Geometry); err != nil {
		return nil, fmt.Errorf("conzone: %w", err)
	}
	f, err := cfg.NewConZone()
	if err != nil {
		return nil, err
	}
	h, err := host.New(f, host.Config{})
	if err != nil {
		return nil, err
	}
	return &Device{f: f, h: h}, nil
}

// FTL exposes the underlying flash translation layer for experiment
// harnesses that need virtual-time control or internal statistics.
func (d *Device) FTL() *ftl.FTL { return d.f }

// Host exposes the underlying multi-queue host controller for experiment
// harnesses that drive queues directly with explicit virtual timestamps.
func (d *Device) Host() *host.Controller { return d.h }

// Capacity returns the device capacity in bytes.
func (d *Device) Capacity() int64 { return d.f.TotalSectors() * SectorSize }

// ZoneBytes returns the writable bytes per zone.
func (d *Device) ZoneBytes() int64 { return d.f.ZoneCapSectors() * SectorSize }

// NumZones returns the zone count.
func (d *Device) NumZones() int { return d.f.NumZones() }

// Now returns the device's virtual clock as a duration from power-on.
func (d *Device) Now() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return time.Duration(d.now)
}

func (d *Device) advance(t sim.Time) {
	if t > d.now {
		d.now = t
	}
	// Sampling disabled (the common case) costs exactly this comparison.
	if d.smp.Due(d.now) {
		d.smp.Record(d.now, telemetry.Collect(d.f))
	}
}

func checkAlign(off int64, n int) error {
	if off < 0 || off%SectorSize != 0 {
		return fmt.Errorf("conzone: offset %d not %d-aligned", off, SectorSize)
	}
	if n <= 0 || int64(n)%SectorSize != 0 {
		return fmt.Errorf("conzone: length %d not a positive multiple of %d", n, SectorSize)
	}
	return nil
}

func toSectors(data []byte) [][]byte {
	n := int64(len(data)) / SectorSize
	out := make([][]byte, n)
	for i := int64(0); i < n; i++ {
		out[i] = data[i*SectorSize : (i+1)*SectorSize]
	}
	return out
}

// Write appends data at byte offset off, which must equal the target
// zone's write pointer. The device clock advances by the simulated time.
func (d *Device) Write(off int64, data []byte) error {
	if err := checkAlign(off, len(data)); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	done, err := d.h.Write(d.now, off/SectorSize, toSectors(data))
	if err != nil {
		return err
	}
	d.advance(done)
	return nil
}

// WriteAt performs a write at an explicit virtual time and returns the
// completion instant (experiment-harness API).
func (d *Device) WriteAt(at Time, off int64, data []byte) (Time, error) {
	if err := checkAlign(off, len(data)); err != nil {
		return at, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	done, err := d.h.Write(at, off/SectorSize, toSectors(data))
	if err != nil {
		return at, err
	}
	d.advance(done)
	return done, nil
}

// Append performs a Zone Append: the data lands at the zone's current
// write pointer, chosen by the device, and the assigned byte offset is
// returned. Unlike Write, concurrent Appends to one zone never race on the
// write pointer — the device serializes them and reports where each landed.
func (d *Device) Append(zone int, data []byte) (int64, error) {
	if err := checkAlign(0, len(data)); err != nil {
		return -1, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	lba, done, err := d.h.Append(d.now, zone, toSectors(data))
	if err != nil {
		return -1, err
	}
	d.advance(done)
	return lba * SectorSize, nil
}

// Read returns n bytes from byte offset off. Unwritten sectors read as
// zeros, as on real hardware.
func (d *Device) Read(off int64, n int) ([]byte, error) {
	if err := checkAlign(off, n); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	sectors, done, err := d.h.Read(d.now, off/SectorSize, int64(n)/SectorSize)
	if err != nil {
		return nil, err
	}
	d.advance(done)
	out := make([]byte, n)
	for i, s := range sectors {
		if s != nil {
			copy(out[int64(i)*SectorSize:], s)
		}
	}
	// The sector buffers were copied out; return them to the host
	// controller's pool so repeated reads do not allocate.
	d.h.Recycle(sectors)
	return out, nil
}

// ReadAt performs a read at an explicit virtual time, returning per-sector
// payloads (nil = unwritten) and the completion instant. A read covering
// only unwritten sectors returns a nil slice — all zeros. The returned
// slices are owned by the caller; handing them back via Host().Recycle
// keeps long read loops allocation-free.
func (d *Device) ReadAt(at Time, off int64, n int) ([][]byte, Time, error) {
	if err := checkAlign(off, n); err != nil {
		return nil, at, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	sectors, done, err := d.h.Read(at, off/SectorSize, int64(n)/SectorSize)
	if err != nil {
		return nil, at, err
	}
	d.advance(done)
	return sectors, done, nil
}

// ResetZone resets the zone: its write pointer returns to the start, its
// flash blocks are erased, and its mapping entries are dropped.
func (d *Device) ResetZone(zone int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	done, err := d.h.ResetZone(d.now, zone)
	if err != nil {
		return err
	}
	d.advance(done)
	return nil
}

// OpenZone explicitly opens a zone.
func (d *Device) OpenZone(zone int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.advance(d.h.Kick()) // order behind any queued zone-state mutation
	return d.f.OpenZone(zone)
}

// CloseZone closes a zone, draining its write buffer.
func (d *Device) CloseZone(zone int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	done, err := d.h.CloseZone(d.now, zone)
	if err != nil {
		return err
	}
	d.advance(done)
	return nil
}

// FinishZone transitions a zone to FULL.
func (d *Device) FinishZone(zone int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	done, err := d.h.FinishZone(d.now, zone)
	if err != nil {
		return err
	}
	d.advance(done)
	return nil
}

// FlushZone forces the zone's buffered data to media (synchronous write
// semantics; sub-unit data detours through SLC).
func (d *Device) FlushZone(zone int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	done, err := d.h.Flush(d.now, zone)
	if err != nil {
		return err
	}
	d.advance(done)
	return nil
}

// Flush drains every write buffer (a device-wide write barrier: it waits
// for every queued write-class command before dispatching).
func (d *Device) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	done, err := d.h.FlushAll(d.now)
	if err != nil {
		return err
	}
	d.advance(done)
	return nil
}

// Zones returns the zone report (as NVMe Report Zones would). Queued
// asynchronous commands are dispatched first so the report is current.
func (d *Device) Zones() []ZoneInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.advance(d.h.Kick())
	return d.f.Zones().Report()
}

// Zone returns one zone descriptor.
func (d *Device) Zone(id int) (ZoneInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.advance(d.h.Kick())
	return d.f.Zones().Zone(id)
}

// WAF returns the write amplification factor observed so far.
func (d *Device) WAF() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.advance(d.h.Kick())
	return d.f.WAF()
}

// ReadOnly reports whether the device has degraded to read-only operation:
// grown-bad blocks consumed every spare superblock (or the SLC staging
// region can no longer sustain writes). Write-class commands then fail with
// ErrReadOnly; reads keep working. The transition is sticky.
func (d *Device) ReadOnly() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.advance(d.h.Kick())
	return d.f.ReadOnly()
}

// BadBlock is one grown-bad block record.
type BadBlock = ftl.BadBlock

// BadBlocks returns the device's grown-bad block table, in discovery order.
func (d *Device) BadBlocks() []BadBlock {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.advance(d.h.Kick())
	return d.f.BadBlockTable()
}

// WearReport summarises per-superblock erase counts.
type WearReport = ftl.WearReport

// Wear returns the device's current wear report (erase counts per normal
// and SLC superblock).
func (d *Device) Wear() WearReport {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.advance(d.h.Kick())
	return d.f.Wear()
}

// CheckInvariants runs the cross-subsystem invariant audit over the
// device's current state: mapping vs. NAND programmed state, zone write
// pointers vs. committed and buffered sectors, the L2P cache vs. the
// mapping table, SLC staging occupancy, superblock bindings and the WAF
// accounting identities. It returns nil when everything is consistent, or
// an error naming the violated invariant. The audit assumes a quiescent
// device (no in-flight call on another goroutine).
func (d *Device) CheckInvariants() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.advance(d.h.Kick())
	if err := check.Audit(d.f); err != nil {
		return err
	}
	return check.AuditHost(d.h)
}

// Observability types re-exported for telemetry consumers.
type (
	// Telemetry is a per-stage latency and event snapshot; it marshals to
	// JSON and renders as Prometheus text or a Chrome Trace Event file.
	Telemetry = obs.Telemetry
	// LifecycleEvent is one recorded I/O lifecycle span.
	LifecycleEvent = obs.Event
	// LifecycleStage identifies which stage of the I/O path a span covers.
	LifecycleStage = obs.Stage
)

// EnableObservation attaches a lifecycle recorder to the device: every host
// op's traversal of the write buffers, SLC staging, combine, L2P fetch, GC
// and raw media paths is recorded as a simulated-time span. ringSize bounds
// the flight-recorder window (<= 0 uses the default of 4096 events).
// Observation costs nothing until enabled; enabling it twice resets the
// recorder.
func (d *Device) EnableObservation(ringSize int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.f.SetRecorder(obs.NewRecorder(ringSize))
}

// DisableObservation detaches the recorder, returning the device to the
// zero-overhead path.
func (d *Device) DisableObservation() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.f.SetRecorder(nil)
}

// Telemetry snapshots the lifecycle recorder: per-stage span counts, cause
// breakdowns, latency summaries, retained events and per-resource usage.
// With observation disabled it returns a zero snapshot.
func (d *Device) Telemetry() Telemetry {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Telemetry()
}

// Stats returns a unified counter snapshot.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.advance(d.h.Kick())
	return telemetry.Collect(d.f)
}

// Workload types re-exported for experiment harnesses.
type (
	// Job is an fio-style micro-benchmark description.
	Job = workload.Job
	// JobResult summarises a finished job.
	JobResult = workload.Result
	// Pattern is a job access pattern.
	Pattern = workload.Pattern
	// WorkloadDevice is the surface the runner drives.
	WorkloadDevice = workload.Device
	// LegacyDevice is the traditional page-mapping baseline device.
	LegacyDevice = legacy.Device
	// FEMUDevice is the FEMU-personality comparator device.
	FEMUDevice = femu.Device
	// ConfZNSDevice is the ConfZNS-personality comparator device.
	ConfZNSDevice = confzns.Device
)

// Job patterns.
const (
	SeqWrite  = workload.SeqWrite
	SeqRead   = workload.SeqRead
	RandRead  = workload.RandRead
	RandWrite = workload.RandWrite
)

// RunJob executes a workload job against any device model.
func RunJob(dev WorkloadDevice, job Job) (JobResult, error) { return workload.Run(dev, job) }

// NewLegacy builds the Legacy baseline device from a configuration.
func NewLegacy(cfg Config) (*LegacyDevice, error) { return cfg.NewLegacy() }

// NewFEMU builds the FEMU-personality device from a configuration.
func NewFEMU(cfg Config) (*FEMUDevice, error) { return cfg.NewFEMU() }

// NewConfZNS builds the ConfZNS-personality device from a configuration.
func NewConfZNS(cfg Config) (*ConfZNSDevice, error) { return cfg.NewConfZNS() }
