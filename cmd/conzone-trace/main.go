// Command conzone-trace records, converts and replays I/O traces against
// the emulated devices.
//
// Usage:
//
//	conzone-trace -gen seqwrite -out trace.bin            # synthesise a trace
//	conzone-trace -replay trace.bin -device conzone       # replay it
//	conzone-trace -replay trace.bin -observe              # replay + telemetry
//	conzone-trace -convert trace.bin -out trace.txt       # binary -> text
//	conzone-trace -convert trace.txt -out trace.bin       # text -> binary
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/conzone/conzone/internal/config"
	"github.com/conzone/conzone/internal/obs"
	"github.com/conzone/conzone/internal/trace"
	"github.com/conzone/conzone/internal/units"
	"github.com/conzone/conzone/internal/workload"
)

func main() {
	gen := flag.String("gen", "", "synthesise a trace: seqwrite, randread, mixed")
	genOps := flag.Int("ops", 1000, "operations for -gen")
	replay := flag.String("replay", "", "trace file to replay")
	device := flag.String("device", "conzone", "device for -replay: conzone, legacy, femu")
	convert := flag.String("convert", "", "trace file to convert (binary<->text by extension)")
	out := flag.String("out", "", "output file for -gen/-convert")
	small := flag.Bool("small", false, "use the Small configuration")
	observe := flag.Bool("observe", false, "with -replay on the conzone device: record lifecycle spans and print per-stage metrics")
	chromeOut := flag.String("chrome", "", "with -observe: write the simulated timeline as a Chrome Trace Event file")
	flag.Parse()

	cfg := config.Paper()
	if *small {
		cfg = config.Small()
	}

	switch {
	case *gen != "":
		if *out == "" {
			fatal(errors.New("-gen requires -out"))
		}
		if err := generate(cfg, *gen, *genOps, *out); err != nil {
			fatal(err)
		}
	case *replay != "":
		if err := doReplay(cfg, *replay, *device, *observe, *chromeOut); err != nil {
			fatal(err)
		}
	case *convert != "":
		if *out == "" {
			fatal(errors.New("-convert requires -out"))
		}
		if err := doConvert(*convert, *out); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conzone-trace:", err)
	os.Exit(1)
}

// generate synthesises a simple trace of the named shape.
func generate(cfg config.DeviceConfig, kind string, ops int, path string) error {
	f, err := cfg.NewConZone()
	if err != nil {
		return err
	}
	zc := f.ZoneCapSectors()
	var recs []trace.Record
	at := time.Duration(0)
	switch kind {
	case "seqwrite":
		lba := int64(0)
		for i := 0; i < ops; i++ {
			n := int64(24)
			if lba%zc+n > zc {
				lba = (lba/zc + 1) * zc
			}
			recs = append(recs, trace.Record{At: at, Op: trace.OpWrite, LBA: lba, Sectors: n})
			lba += n
			at += 50 * time.Microsecond
		}
	case "randread":
		// Prefill one zone, then read it randomly.
		recs = append(recs, trace.Record{At: 0, Op: trace.OpWrite, LBA: 0, Sectors: zc})
		recs = append(recs, trace.Record{At: 0, Op: trace.OpFlush})
		state := uint64(0x9E3779B97F4A7C15)
		for i := 0; i < ops; i++ {
			state ^= state >> 12
			state ^= state << 25
			state ^= state >> 27
			lba := int64(state*0x2545F4914F6CDD1D) % zc
			if lba < 0 {
				lba = -lba
			}
			recs = append(recs, trace.Record{At: at, Op: trace.OpRead, LBA: lba, Sectors: 1})
			at += 40 * time.Microsecond
		}
	case "mixed":
		for i := 0; i < ops; i++ {
			zone := int32(i % 4)
			base := int64(zone) * zc
			off := int64(i/4*24) % (zc - 24)
			if off == 0 && i >= 4 {
				recs = append(recs, trace.Record{At: at, Op: trace.OpReset, Zone: zone})
				at += 10 * time.Microsecond
			}
			recs = append(recs, trace.Record{At: at, Op: trace.OpWrite, LBA: base + off, Sectors: 24})
			at += 60 * time.Microsecond
		}
	default:
		return fmt.Errorf("unknown generator %q", kind)
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	w := trace.NewWriter(out)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d records to %s\n", len(recs), path)
	return nil
}

func doReplay(cfg config.DeviceConfig, path, device string, observe bool, chromePath string) error {
	recs, err := readTrace(path)
	if err != nil {
		return err
	}
	if observe && device != "conzone" {
		return fmt.Errorf("-observe is only supported by the conzone device, not %q", device)
	}
	var dev workload.Device
	var rec *obs.Recorder
	switch device {
	case "conzone":
		f, e := cfg.NewConZone()
		if e != nil {
			return e
		}
		if observe {
			rec = obs.NewRecorder(0)
			f.SetRecorder(rec)
		}
		dev = f
	case "legacy":
		dev, err = cfg.NewLegacy()
	case "femu":
		dev, err = cfg.NewFEMU()
	default:
		err = fmt.Errorf("unknown device %q", device)
	}
	if err != nil {
		return err
	}
	res, err := trace.Replay(dev, recs)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d records on %s: %d reads (%s), %d writes (%s), %d resets, %d flushes\n",
		res.Records, device, res.ReadOps, units.FormatBytes(res.ReadBytes),
		res.WriteOps, units.FormatBytes(res.WriteB), res.Resets, res.Flushes)
	fmt.Printf("virtual completion time: %v\n", time.Duration(res.LastDone))
	if rec != nil {
		tel := rec.Snapshot()
		fmt.Println()
		if err := tel.WritePrometheus(os.Stdout); err != nil {
			return err
		}
		if chromePath != "" {
			o, err := os.Create(chromePath)
			if err != nil {
				return err
			}
			defer o.Close()
			if err := tel.WriteChromeTrace(o); err != nil {
				return err
			}
			fmt.Printf("wrote Chrome trace (%d events) to %s — open via chrome://tracing or https://ui.perfetto.dev\n",
				len(tel.Events), chromePath)
		}
	}
	return nil
}

func doConvert(in, out string) error {
	recs, err := readTrace(in)
	if err != nil {
		return err
	}
	o, err := os.Create(out)
	if err != nil {
		return err
	}
	defer o.Close()
	if strings.HasSuffix(out, ".txt") {
		if err := trace.EncodeText(o, recs); err != nil {
			return err
		}
	} else {
		w := trace.NewWriter(o)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	fmt.Printf("converted %d records: %s -> %s\n", len(recs), in, out)
	return nil
}

// readTrace loads either format, picking by extension with a binary
// fallback.
func readTrace(path string) ([]trace.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".txt") {
		return trace.DecodeText(f)
	}
	return trace.NewReader(f).ReadAll()
}
