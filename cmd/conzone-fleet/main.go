// Command conzone-fleet simulates a population of ConZone devices — the
// "thousands of phones, one experiment" runner.
//
// Usage:
//
//	conzone-fleet [-spec fleet.json] [-seed N] [-devices N] [-workers N]
//	              [-metrics out.prom] [-json out.json] [-print-spec] [-digest]
//
// Without -spec the built-in two-cohort population runs: "fresh"
// factory-new devices against "worn" pre-aged devices with wear-coupled
// fault rates and occasional mid-run power cuts, -devices each. The merged
// report (per-cohort device/failure/power-loss/read-only counts, exact
// population latency percentiles, WAF) goes to stdout; -metrics writes the
// per-cohort Prometheus exposition. Output is byte-identical across runs
// and across -workers values: only wall-clock time changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/conzone/conzone/internal/fleet"
)

func main() {
	specPath := flag.String("spec", "", "fleet spec JSON (default: the built-in two-cohort population)")
	seed := flag.Uint64("seed", 1, "fleet master seed (overrides the spec's seed when -seed is given explicitly)")
	devices := flag.Int("devices", 500, "without -spec: devices per built-in cohort")
	workers := flag.Int("workers", 0, "concurrent devices (0 = NumCPU); does not affect results")
	metricsOut := flag.String("metrics", "", "write the per-cohort Prometheus exposition to this file ('-' = stdout)")
	jsonOut := flag.String("json", "", "write per-device results as JSON to this file")
	printSpec := flag.Bool("print-spec", false, "print the effective spec as JSON and exit")
	digest := flag.Bool("digest", false, "print the SHA-256 digest of the merged output after the report")
	flag.Parse()

	var spec fleet.Spec
	if *specPath != "" {
		var err error
		spec, err = fleet.LoadSpec(*specPath)
		if err != nil {
			fatal(err)
		}
		if seedSet() {
			spec.Seed = *seed
		}
	} else {
		spec = fleet.DefaultSpec(*seed, *devices)
	}

	if *printSpec {
		b, err := json.MarshalIndent(&spec, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(b))
		return
	}

	// Progress goes to stderr so stdout stays the deterministic report.
	last := -1
	res, err := fleet.Run(&spec, fleet.Options{
		Workers: *workers,
		Progress: func(done, total int) {
			pct := done * 100 / total
			if pct/10 > last/10 {
				last = pct
				fmt.Fprintf(os.Stderr, "fleet: %d/%d devices (%d%%)\n", done, total, pct)
			}
		},
	})
	if err != nil {
		fatal(err)
	}

	if err := res.WriteReport(os.Stdout); err != nil {
		fatal(err)
	}
	if *digest {
		fmt.Printf("digest: sha256:%s\n", res.Digest())
	}

	if *metricsOut != "" {
		if *metricsOut == "-" {
			if err := res.WriteMetrics(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fatal(err)
			}
			if err := res.WriteMetrics(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
	if *jsonOut != "" {
		b, err := json.MarshalIndent(res.Devices, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, b, 0o644); err != nil {
			fatal(err)
		}
	}
}

// seedSet reports whether -seed was given explicitly on the command line.
func seedSet() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			set = true
		}
	})
	return set
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conzone-fleet:", err)
	os.Exit(1)
}
