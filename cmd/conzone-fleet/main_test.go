package main

import (
	"bytes"
	"runtime"
	"testing"

	"github.com/conzone/conzone/internal/fleet"
)

// TestThousandDeviceDeterminism is the CLI acceptance pin: the built-in
// two-cohort population at 1000 devices — exactly what
// `conzone-fleet -devices 500` runs — produces byte-identical report and
// metrics output across repeated runs and across worker-pool sizes.
func TestThousandDeviceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-device population in -short mode")
	}
	type out struct {
		report, metrics []byte
		digest          string
	}
	runOnce := func(workers int) out {
		spec := fleet.DefaultSpec(1, 500)
		res, err := fleet.Run(&spec, fleet.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var r, m bytes.Buffer
		if err := res.WriteReport(&r); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteMetrics(&m); err != nil {
			t.Fatal(err)
		}
		if res.Fleet.Devices != 1000 || len(res.Cohorts) != 2 {
			t.Fatalf("population shape: %d devices, %d cohorts", res.Fleet.Devices, len(res.Cohorts))
		}
		if res.Fleet.Failed != 0 {
			t.Fatalf("%d devices failed to build or run", res.Fleet.Failed)
		}
		if res.Fleet.Lat.Count == 0 {
			t.Fatal("population recorded no latencies")
		}
		return out{r.Bytes(), m.Bytes(), res.Digest()}
	}

	wide := runOnce(runtime.NumCPU())
	again := runOnce(runtime.NumCPU())
	serial := runOnce(1)

	if !bytes.Equal(wide.report, again.report) || wide.digest != again.digest {
		t.Errorf("output differs across repeated runs:\n%s\n---\n%s", wide.report, again.report)
	}
	if !bytes.Equal(wide.report, serial.report) || wide.digest != serial.digest {
		t.Errorf("output differs across worker counts:\n%s\n---\n%s", wide.report, serial.report)
	}
	if !bytes.Equal(wide.metrics, serial.metrics) {
		t.Error("metrics exposition differs across worker counts")
	}
}
