// Command conzone-fio runs fio-style micro-benchmarks against one of the
// emulated devices (ConZone, Legacy, or the FEMU personality) and prints a
// summary with virtual-time bandwidth, IOPS and latency percentiles.
//
// Example:
//
//	conzone-fio -device conzone -rw randread -bs 4k -range 1g -size 64m -prefill
//	conzone-fio -device legacy -rw write -bs 512k -numjobs 4 -size 256m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/conzone/conzone/internal/config"
	"github.com/conzone/conzone/internal/units"
	"github.com/conzone/conzone/internal/workload"
)

func main() {
	device := flag.String("device", "conzone", "device model: conzone, legacy, femu, confzns")
	rw := flag.String("rw", "read", "pattern: read, write, randread, randwrite")
	bs := flag.String("bs", "4k", "block size")
	numjobs := flag.Int("numjobs", 1, "virtual threads")
	offset := flag.String("offset", "0", "region start")
	rng := flag.String("range", "", "region size (default: whole device)")
	size := flag.String("size", "64m", "I/O volume per thread")
	prefill := flag.Bool("prefill", false, "sequentially fill the region before the job")
	overhead := flag.Duration("overhead", 6*time.Microsecond, "host-side per-op cost")
	seed := flag.Uint64("seed", 1, "random seed")
	cfgPath := flag.String("config", "", "device configuration JSON")
	quickCfg := flag.Bool("small", false, "use the scaled-down Small configuration")
	flag.Parse()

	cfg := config.Paper()
	if *quickCfg {
		cfg = config.Small()
	}
	if *cfgPath != "" {
		var err error
		cfg, err = config.Load(*cfgPath)
		if err != nil {
			fatal(err)
		}
	}

	var dev workload.Device
	var err error
	switch *device {
	case "conzone":
		dev, err = cfg.NewConZone()
	case "legacy":
		dev, err = cfg.NewLegacy()
	case "femu":
		dev, err = cfg.NewFEMU()
	case "confzns":
		dev, err = cfg.NewConfZNS()
	default:
		err = fmt.Errorf("unknown device %q", *device)
	}
	if err != nil {
		fatal(err)
	}

	pattern, err := parsePattern(*rw)
	if err != nil {
		fatal(err)
	}
	bsB, err := units.ParseBytes(*bs)
	if err != nil {
		fatal(fmt.Errorf("bs: %w", err))
	}
	offB, err := units.ParseBytes(*offset)
	if err != nil {
		fatal(fmt.Errorf("offset: %w", err))
	}
	capBytes := dev.TotalSectors() * units.Sector
	rngB := capBytes - offB
	if *rng != "" {
		rngB, err = units.ParseBytes(*rng)
		if err != nil {
			fatal(fmt.Errorf("range: %w", err))
		}
	}
	sizeB, err := units.ParseBytes(*size)
	if err != nil {
		fatal(fmt.Errorf("size: %w", err))
	}
	sizeB = units.AlignUp(sizeB, bsB)

	job := workload.Job{
		Name:             fmt.Sprintf("%s-%s", *device, *rw),
		Pattern:          pattern,
		BlockBytes:       bsB,
		NumJobs:          *numjobs,
		OffsetBytes:      offB,
		RangeBytes:       rngB,
		TotalBytesPerJob: sizeB,
		PerOpOverhead:    *overhead,
		FlushAtEnd:       pattern.IsWrite(),
		Seed:             *seed,
	}

	if *prefill {
		fmt.Fprintf(os.Stderr, "prefilling [%s, +%s)...\n", units.FormatBytes(offB), units.FormatBytes(rngB))
		done, err := workload.Prefill(dev, 0, offB, rngB, false)
		if err != nil {
			fatal(fmt.Errorf("prefill: %w", err))
		}
		job.StartAt = done
	}

	res, err := workload.Run(dev, job)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: bs=%s jobs=%d region=[%s,+%s) volume=%s/thread\n",
		job.Name, units.FormatBytes(bsB), *numjobs, units.FormatBytes(offB),
		units.FormatBytes(rngB), units.FormatBytes(sizeB))
	fmt.Printf("  bw=%.1f MiB/s  iops=%.0f (%.1f KIOPS)  elapsed=%v (virtual)\n",
		res.BandwidthMiBps, res.IOPS, res.KIOPS(), res.Elapsed.Round(time.Microsecond))
	fmt.Printf("  lat: %v\n", res.Lat)
}

func parsePattern(s string) (workload.Pattern, error) {
	switch s {
	case "read":
		return workload.SeqRead, nil
	case "write":
		return workload.SeqWrite, nil
	case "randread":
		return workload.RandRead, nil
	case "randwrite":
		return workload.RandWrite, nil
	}
	return 0, fmt.Errorf("unknown rw %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conzone-fio:", err)
	os.Exit(1)
}
