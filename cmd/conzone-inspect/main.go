// Command conzone-inspect prints the geometry, derived layout, and zone
// report of a device configuration, and can write configuration templates.
//
// Usage:
//
//	conzone-inspect                      # describe the paper configuration
//	conzone-inspect -config my.json      # describe a saved configuration
//	conzone-inspect -write-config my.json -preset qlc
//	conzone-inspect -image dev.img        # recover a saved NAND image and
//	                                      # print its zones, journal and wear
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"github.com/conzone/conzone"
	"github.com/conzone/conzone/internal/config"
	"github.com/conzone/conzone/internal/fault"
	"github.com/conzone/conzone/internal/nand"
	"github.com/conzone/conzone/internal/telemetry"
	"github.com/conzone/conzone/internal/units"
)

func main() {
	cfgPath := flag.String("config", "", "device configuration JSON to describe")
	writeCfg := flag.String("write-config", "", "write a configuration template to this path and exit")
	preset := flag.String("preset", "paper", "template preset: paper, small, qlc")
	zones := flag.Bool("zones", false, "print the full zone report")
	image := flag.String("image", "", "recover a NAND image saved with SaveImage and describe what survived")
	flag.Parse()

	cfg, err := pick(*preset)
	if err != nil {
		fatal(err)
	}
	if *writeCfg != "" {
		if err := cfg.Save(*writeCfg); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s preset to %s\n", *preset, *writeCfg)
		return
	}
	if *cfgPath != "" {
		cfg, err = config.Load(*cfgPath)
		if err != nil {
			fatal(err)
		}
	}

	if *image != "" {
		if err := inspectImage(cfg, *image, *zones); err != nil {
			fatal(err)
		}
		return
	}

	f, err := cfg.NewConZone()
	if err != nil {
		fatal(err)
	}
	g := cfg.Geometry
	fmt.Println("Geometry:", g)
	fmt.Println("FTL:     ", f.Describe())

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "logical capacity\t%s\n", units.FormatBytes(f.TotalSectors()*units.Sector))
	fmt.Fprintf(w, "zones\t%d x %s\n", f.NumZones(), units.FormatBytes(f.ZoneCapSectors()*units.Sector))
	fmt.Fprintf(w, "superblock\t%s (%d program units)\n",
		units.FormatBytes(g.SuperblockBytes()), g.PUsPerBlock()*g.Chips())
	fmt.Fprintf(w, "superpage / write buffer\t%s x %d buffers\n",
		units.FormatBytes(g.SuperpageBytes()), cfg.FTL.NumWriteBuffers)
	fmt.Fprintf(w, "alignment tail per zone\t%s (in reserved SLC)\n",
		units.FormatBytes((f.ZoneCapSectors()-g.SuperblockBytes()/units.Sector)*units.Sector))
	fmt.Fprintf(w, "SLC staging\t%d superblocks, %s\n",
		f.Staging().SuperblockCount(),
		units.FormatBytes(f.Staging().TotalSectors()*units.Sector))
	fmt.Fprintf(w, "L2P cache\t%s (%d entries of %dB), %s search\n",
		units.FormatBytes(cfg.FTL.L2PCacheBytes), f.Cache().MaxEntries(),
		cfg.FTL.L2PEntryBytes, cfg.FTL.Search)
	fmt.Fprintf(w, "aggregation chunk\t%s\n", units.FormatBytes(cfg.FTL.ChunkSectors*units.Sector))
	fmt.Fprintf(w, "latencies\tSLC %v/%v, TLC %v/%v, QLC %v/%v (prog/read)\n",
		cfg.Latency.SLC.Program, cfg.Latency.SLC.Read,
		cfg.Latency.TLC.Program, cfg.Latency.TLC.Read,
		cfg.Latency.QLC.Program, cfg.Latency.QLC.Read)
	fmt.Fprintf(w, "spare superblocks\t%d (bad-block replacement pool)\n", f.SpareSuperblocks())
	if fc := cfg.FTL.Faults; fc != nil {
		rr := fc.ReadRetryRounds
		if rr == 0 {
			rr = fault.DefaultReadRetryRounds
		}
		fmt.Fprintf(w, "fault injection\tseed %d, %d scripted faults, %d ECC retry rounds\n",
			fc.Seed, len(fc.Scripts), rr)
		fmt.Fprintf(w, "fault rates (prog/erase/read)\tSLC %g/%g/%g, TLC %g/%g/%g, QLC %g/%g/%g\n",
			fc.SLC.ProgramFail, fc.SLC.EraseFail, fc.SLC.ReadFail,
			fc.TLC.ProgramFail, fc.TLC.EraseFail, fc.TLC.ReadFail,
			fc.QLC.ProgramFail, fc.QLC.EraseFail, fc.QLC.ReadFail)
	} else {
		fmt.Fprintf(w, "fault injection\tdisabled\n")
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}

	if *zones {
		fmt.Println("\nZone report:")
		zw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(zw, "zone\tstart LBA\tcap (sectors)\tWP\tstate")
		for _, z := range f.Zones().Report() {
			fmt.Fprintf(zw, "%d\t%d\t%d\t%d\t%v\n", z.ID, z.Start, z.Capacity, z.WP, z.State)
		}
		if err := zw.Flush(); err != nil {
			fatal(err)
		}
		fmt.Println()
		if err := telemetry.CollectZones(f, 0).WriteHeatmap(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// inspectImage recovers a file-backed NAND image exactly as a crashed
// device's mount path would and reports the durable state that survived:
// zone write pointers, the metadata journal, wear and the bad-block table.
// With zones set it also renders the recovered state's textual heatmaps.
func inspectImage(cfg config.DeviceConfig, path string, zones bool) error {
	dev, err := conzone.OpenImage(cfg, path)
	if err != nil {
		return err
	}
	f := dev.FTL()
	arr := f.Array()
	fmt.Printf("Image %s: recovered cleanly\n\n", path)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	c := arr.Counters()
	fmt.Fprintf(w, "media programs\t%d PU, %d SLC page, %d SLC partial, %d map\n",
		c.PUPrograms, c.PageProgramsSLC, c.PartialPrograms, c.MapPrograms)
	fmt.Fprintf(w, "media erases\t%d (total wear %d)\n", c.Erases, arr.TotalEraseCount())
	fmt.Fprintf(w, "bytes programmed\t%s\n", units.FormatBytes(c.BytesProgrammed))
	st := f.Stats()
	fmt.Fprintf(w, "retired superblocks\t%d (spares left: %d)\n", st.RetiredSuperblocks, f.SpareSuperblocks())
	fmt.Fprintf(w, "grown bad blocks\t%d\n", len(f.BadBlockTable()))
	if err := w.Flush(); err != nil {
		return err
	}

	written := 0
	fmt.Println("\nRecovered zones (non-empty):")
	zw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(zw, "zone\tstart LBA\twritten (sectors)\tstate")
	for _, z := range f.Zones().Report() {
		if z.Written() == 0 {
			continue
		}
		written++
		fmt.Fprintf(zw, "%d\t%d\t%d\t%v\n", z.ID, z.Start, z.Written(), z.State)
	}
	if err := zw.Flush(); err != nil {
		return err
	}
	if written == 0 {
		fmt.Println("  (none)")
	}

	j := arr.MetaJournal()
	fmt.Printf("\nMetadata journal: %d records\n", len(j))
	jw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for i, rec := range j {
		switch rec.Kind {
		case nand.MetaZoneReset:
			fmt.Fprintf(jw, "%d\t%v\tzone %d\tseq %d\n", i, rec.Kind, rec.Zone, rec.Seq)
		case nand.MetaRetireSB:
			fmt.Fprintf(jw, "%d\t%v\tsuperblock %d\tchip %d block %d op %d\n",
				i, rec.Kind, rec.SB, rec.Chip, rec.Block, rec.Op)
		case nand.MetaSLCRetire:
			fmt.Fprintf(jw, "%d\t%v\tstaging superblock %d\n", i, rec.Kind, rec.SB)
		}
	}
	if err := jw.Flush(); err != nil {
		return err
	}
	if zones {
		fmt.Println()
		return dev.Heatmap().WriteHeatmap(os.Stdout)
	}
	return nil
}

func pick(preset string) (config.DeviceConfig, error) {
	switch preset {
	case "paper":
		return config.Paper(), nil
	case "small":
		return config.Small(), nil
	case "qlc":
		return config.QLC(), nil
	}
	return config.DeviceConfig{}, fmt.Errorf("unknown preset %q", preset)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conzone-inspect:", err)
	os.Exit(1)
}
