// Command conzone-serve runs an emulated ConZone device behind a live
// observability endpoint:
//
//	conzone-serve [-addr :9090] [-config file.json] [-image nand.img]
//	              [-sample-interval 5ms] [-ring 4096] [-idle]
//
// Endpoints:
//
//	/metrics          Prometheus text exposition: the unified device
//	                  snapshot (every subsystem's counters, fault and
//	                  power-loss totals, occupancy gauges), per-stage
//	                  latency summaries and per-zone heat gauges
//	/timeseries.json  the virtual-time sample series
//	/zones.json       per-zone / per-SLC-superblock heat table
//	/zones.txt        textual heatmaps
//	/debug/pprof/     live Go profiles of the serve process
//
// By default the device continuously runs a sustained random-write
// workload on its virtual clock, so every scrape shows moving curves;
// -idle serves a quiescent device instead (useful with -image to inspect
// a saved NAND state).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/conzone/conzone"
	"github.com/conzone/conzone/internal/config"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	cfgPath := flag.String("config", "", "device configuration JSON (default: the paper's §IV-A setup)")
	image := flag.String("image", "", "open this NAND image (conzone-inspect/SaveImage format) instead of a fresh device")
	interval := flag.Duration("sample-interval", 5*time.Millisecond, "virtual-time sample interval")
	ring := flag.Int("ring", 0, "sample ring size (<= 0: default 4096)")
	idle := flag.Bool("idle", false, "serve a quiescent device instead of driving a background workload")
	flag.Parse()

	cfg := config.Paper()
	if *cfgPath != "" {
		var err error
		cfg, err = config.Load(*cfgPath)
		if err != nil {
			fatal(err)
		}
	}

	var dev *conzone.Device
	var err error
	if *image != "" {
		dev, err = conzone.OpenImage(cfg, *image)
	} else {
		dev, err = conzone.Open(cfg)
	}
	if err != nil {
		fatal(err)
	}
	dev.EnableObservation(0)
	if err := dev.EnableSampling(*interval, *ring); err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("conzone-serve: http://%s/ (device: %d zones x %d MiB, sampling every %v of virtual time)\n",
		ln.Addr(), dev.NumZones(), dev.ZoneBytes()>>20, *interval)

	if !*idle {
		go drive(dev)
	}
	fatal(http.Serve(ln, dev.ObservabilityHandler()))
}

// drive runs the sustained random-write workload forever: sub-PU bursts to
// random zones of a working set, resetting each zone as it fills. Device
// methods lock internally, so scrapes interleave safely with the drive
// loop; a write failure (e.g. the device degrading to read-only) stops the
// workload but not the endpoint.
func drive(dev *conzone.Device) {
	const burst = 48 << 10
	zb := dev.ZoneBytes()
	base := dev.NumZones() / 2
	n := 8
	if base+n > dev.NumZones() {
		n = dev.NumZones() - base
	}
	offs := make([]int64, n)
	buf := make([]byte, burst)
	state := uint64(0x9E3779B97F4A7C15)
	for {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		i := int((state * 0x2545F4914F6CDD1D) % uint64(n))
		if offs[i]+burst > zb {
			if err := dev.ResetZone(base + i); err != nil {
				fmt.Fprintln(os.Stderr, "conzone-serve: workload stopped:", err)
				return
			}
			offs[i] = 0
		}
		if err := dev.Write(int64(base+i)*zb+offs[i], buf); err != nil {
			fmt.Fprintln(os.Stderr, "conzone-serve: workload stopped:", err)
			return
		}
		offs[i] += burst
		// Throttle to ~2000 bursts/s of wall time: the virtual clock still
		// outruns it by orders of magnitude, and the process stays polite.
		time.Sleep(500 * time.Microsecond)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conzone-serve:", err)
	os.Exit(1)
}
