package main

import (
	"encoding/json"
	"fmt"
	"os"
	"text/tabwriter"

	"github.com/conzone/conzone/internal/emubench"
)

// loadBaseline reads a committed selfbench report (the BENCH_emulator.json
// schema) for -compare.
func loadBaseline(path string) (*selfBenchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep selfBenchReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s holds no benchmark results", path)
	}
	return &rep, nil
}

// compareReports prints the fresh run next to the baseline — ns/op and
// MiB/s with signed percentage deltas — and returns an error naming every
// benchmark whose ns/op regressed by more than regressPct percent, so CI
// can gate on the exit status. Benchmarks present on only one side are
// reported but never fail the comparison (the families may drift across
// PRs); allocation growth on a zero-alloc baseline entry is called out
// alongside the timing columns.
func compareReports(cur, base *selfBenchReport, regressPct float64) error {
	fmt.Printf("\nbaseline: %s (%s %s/%s)\n", base.Date, base.GoVersion, base.GOOS, base.GOARCH)
	fmt.Printf("current:  %s (%s %s/%s)  regression threshold %.1f%%\n\n",
		cur.Date, cur.GoVersion, cur.GOOS, cur.GOARCH, regressPct)

	byName := make(map[string]selfBenchResult, len(base.Results))
	for _, r := range base.Results {
		byName[r.Name] = r
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tbase ns/op\tns/op\tΔns/op\tbase MiB/s\tMiB/s\tΔMiB/s\tverdict")
	var regressed []string
	matched := 0
	for _, r := range cur.Results {
		b, ok := byName[r.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.1f\t-\t-\t%.1f\t-\tnew\n", r.Name, r.NsPerOp, r.MiBPerSec)
			continue
		}
		matched++
		delete(byName, r.Name)
		dns := pctDelta(r.NsPerOp, b.NsPerOp)
		dmib := pctDelta(r.MiBPerSec, b.MiBPerSec)
		verdict := "ok"
		switch {
		case dns > regressPct:
			verdict = "REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s (+%.1f%% ns/op)", r.Name, dns))
		case dns < -regressPct:
			verdict = "improved"
		}
		if b.AllocsPerOp == 0 && r.AllocsPerOp > 0 {
			verdict += " +allocs"
			regressed = append(regressed, fmt.Sprintf("%s (%d allocs/op on a zero-alloc baseline)", r.Name, r.AllocsPerOp))
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%+.1f%%\t%.1f\t%.1f\t%+.1f%%\t%s\n",
			r.Name, b.NsPerOp, r.NsPerOp, dns, b.MiBPerSec, r.MiBPerSec, dmib, verdict)
	}
	for name := range byName {
		fmt.Fprintf(tw, "%s\t%.1f\t-\t-\t%.1f\t-\t-\tmissing\n", name, byName[name].NsPerOp, byName[name].MiBPerSec)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if matched == 0 {
		return fmt.Errorf("no benchmark names in common with the baseline")
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) beyond the %.1f%% threshold: %v", len(regressed), regressPct, regressed)
	}
	fmt.Printf("\nall %d matched benchmarks within %.1f%%\n", matched, regressPct)
	return nil
}

func pctDelta(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

// runShardSweep measures the read-heavy QD16 workloads at each requested
// shard count — the scaling curve behind EXPERIMENTS.md. Shards=1 is the
// sequential path; higher counts clamp to the device's channel count.
// burstread submits reads in un-polled batches, so it is the workload
// whose drains actually reach the parallel executor; randread alternates
// submit/poll and stays on the sequential fast path at every count, which
// makes it the control: its curve must be flat. Both curves are flat on a
// single-core host, where the FTL disables parallel drains outright.
func runShardSweep(counts []int) error {
	header("Shard-count scaling (wall-clock ns per emulated 4 KiB I/O)")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tshards\tns/op\tMiB/s\tallocs/op")
	for _, w := range []string{"burstread", "randread"} {
		for _, n := range counts {
			spec := emubench.Spec{Workload: w, QD: 16, Shards: n}
			res := runBenchmark(spec)
			fmt.Fprintf(tw, "%s/qd16\t%d\t%.1f\t%.1f\t%d\n",
				w, n, res.NsPerOp, res.MiBPerSec, res.AllocsPerOp)
		}
	}
	return tw.Flush()
}
