// Command conzone-bench regenerates the tables and figures of the ConZone
// paper's evaluation (§IV) and prints them next to the paper's claims.
//
// Usage:
//
//	conzone-bench [-exp all|table1|table2|fig6a|fig6b|fig7|fig8|ablations] [-quick] [-config file.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"github.com/conzone/conzone/internal/config"
	"github.com/conzone/conzone/internal/experiments"
	"github.com/conzone/conzone/internal/units"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, table2, fig6a, fig6b, fig7, fig8, ablations")
	quick := flag.Bool("quick", false, "reduced I/O volumes for a fast run")
	cfgPath := flag.String("config", "", "device configuration JSON (default: the paper's §IV-A setup)")
	flag.Parse()

	cfg := config.Paper()
	if *cfgPath != "" {
		var err error
		cfg, err = config.Load(*cfgPath)
		if err != nil {
			fatal(err)
		}
	}
	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}

	runners := map[string]func(config.DeviceConfig, experiments.Options) error{
		"table1":    func(config.DeviceConfig, experiments.Options) error { return runTable1() },
		"table2":    func(c config.DeviceConfig, _ experiments.Options) error { return runTable2(c) },
		"fig6a":     runFig6a,
		"fig6b":     runFig6b,
		"fig7":      runFig7,
		"fig8":      runFig8,
		"ablations": runAblations,
		"emulators": runEmulators,
	}
	order := []string{"table1", "table2", "fig6a", "fig6b", "fig7", "fig8", "ablations", "emulators"}

	if *exp == "all" {
		for _, name := range order {
			if err := runners[name](cfg, opt); err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if err := run(cfg, opt); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conzone-bench:", err)
	os.Exit(1)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func runTable1() error {
	header("Table I: emulator capabilities")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Feature\tFEMU\tConfZNS\tNVMeVirt\tConZone\tthis repo")
	for _, r := range experiments.RunTable1() {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Feature, r.FEMU, r.ConfZNS, r.NVMeVirt, r.ConZone, r.ThisRepo)
	}
	return w.Flush()
}

func runTable2(cfg config.DeviceConfig) error {
	header("Table II: media latencies")
	rows, err := experiments.RunTable2(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Media\tOp\tpaper\tmeasured\tof which transfer")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%v\t%v\t%v\n", r.Media, r.Op, r.Paper, r.Measured, r.TransferOverhead)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := experiments.VerifyTable2(rows); err != nil {
		return err
	}
	fmt.Println("timing model matches Table II exactly (plus stated transfers)")
	return nil
}

func runFig6a(cfg config.DeviceConfig, opt experiments.Options) error {
	header("Fig. 6(a): 512 KiB sequential bandwidth (MiB/s)")
	res, err := experiments.RunFig6a(cfg, opt)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Series\twrite ST\twrite MT\tread ST\tread MT")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.0f\n", r.Series, r.WriteST, r.WriteMT, r.ReadST, r.ReadMT)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	printChecks(res.Checks, res.Pass)
	return nil
}

func runFig6b(cfg config.DeviceConfig, opt experiments.Options) error {
	header("Fig. 6(b): write-buffer conflicts (48 KiB dual-zone writes)")
	res, err := experiments.RunFig6b(cfg, opt)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Case\tbandwidth MiB/s\tWAF\tbuffer evictions")
	fmt.Fprintf(w, "conflict (same parity)\t%.0f\t%.3f\t%d\n", res.ConflictBW, res.ConflictWAF, res.ConflictEvictions)
	fmt.Fprintf(w, "no conflict\t%.0f\t%.3f\t%d\n", res.NoConflictBW, res.NoConflictWAF, res.NoConflictEvictions)
	if err := w.Flush(); err != nil {
		return err
	}
	printChecks(res.Checks, res.Pass)
	return nil
}

func runFig7(cfg config.DeviceConfig, opt experiments.Options) error {
	header("Fig. 7: mapping mechanisms under 4 KiB random reads")
	res, err := experiments.RunFig7(cfg, opt)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mapping\trange\tKIOPS\tp99\tL2P miss")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%v\t%.1f%%\n",
			p.Mapping, units.FormatBytes(p.Range), p.KIOPS, p.P99, p.MissRatio*100)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	printChecks(res.Checks, res.Pass)
	return nil
}

func runFig8(cfg config.DeviceConfig, opt experiments.Options) error {
	header("Fig. 8: L2P search strategies at ~27.4% miss rate")
	res, err := experiments.RunFig8(cfg, opt)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Strategy\tKIOPS\tp99\tmiss rate")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%s\t%.1f\t%v\t%.1f%%\n", p.Strategy, p.KIOPS, p.P99, p.MissRatio*100)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	printChecks(res.Checks, res.Pass)
	return nil
}

func runAblations(cfg config.DeviceConfig, opt experiments.Options) error {
	header("Ablations (DESIGN.md §5)")
	type runner func(config.DeviceConfig, experiments.Options) (experiments.AblationResult, error)
	for _, r := range []runner{
		experiments.RunAblationChannelBW,
		experiments.RunAblationDedicatedBuffers,
		experiments.RunAblationCombine,
		experiments.RunAblationZoneAggregation,
		experiments.RunAblationL2PLog,
	} {
		res, err := r(cfg, opt)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s: %s -> %s\n", res.Name, res.Baseline, res.Variant)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "metric\tbaseline\tvariant")
		for k, v := range res.Metrics {
			fmt.Fprintf(w, "%s\t%.3f\t%.3f\n", k, v[0], v[1])
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func runEmulators(cfg config.DeviceConfig, opt experiments.Options) error {
	header("Table I, dynamically: the emulators on a consumer workload")
	rows, err := experiments.RunEmulatorComparison(cfg, opt)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Emulator\tconflict write MiB/s\trandread KIOPS\tpremature flushes\tSLC path\tL2P cache")
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%s\t%s\t%s\n",
			r.Emulator, r.WriteBW, r.RandReadKIOPS,
			yn(r.ModelsPrematureFlush), yn(r.ModelsSLC), yn(r.ModelsL2PCache))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("only ConZone registers the consumer-specific internals (paper Table I)")
	return nil
}

func printChecks(checks []string, pass bool) {
	for _, c := range checks {
		fmt.Println(" ", c)
	}
	if pass {
		fmt.Println("  => paper claims reproduced")
	} else {
		fmt.Println("  => SOME CLAIMS NOT REPRODUCED")
	}
}
