// Command conzone-bench regenerates the tables and figures of the ConZone
// paper's evaluation (§IV) and prints them next to the paper's claims.
//
// Usage:
//
//	conzone-bench [-exp all|table1|table2|fig6a|fig6b|fig7|fig8|ablations] [-quick] [-config file.json]
//	conzone-bench -metrics [-metrics-json tel.json] [-chrome trace.json]
//	conzone-bench -qd 1,2,4,8,16 [-quick] [-metrics-json sweep.json]
//	conzone-bench -faults [-fault-seed 7] [-quick]
//	conzone-bench -crash [-crash-seeds 8] [-crash-ops 600] [-fault-seed 7] [-quick]
//	conzone-bench -timeseries [-sample-interval 5ms] [-series-jsonl s.jsonl] [-series-csv s.csv] [-quick]
//	conzone-bench -serve :9090 [-quick]
//	conzone-bench -selfbench [-json BENCH_emulator.json] [-shards N]
//	conzone-bench -selfbench -compare BENCH_emulator.json [-regress-pct 25]
//	conzone-bench -shardsweep 1,2,4,8
//
// Any mode accepts -cpuprofile/-memprofile to write pprof profiles of the
// run. -selfbench measures the emulator's own wall-clock throughput (ns per
// emulated 4 KiB I/O) over the internal/emubench workload family; the JSON
// output is the schema of the repo-root BENCH_emulator.json baseline.
// -compare prints ns/op and MiB/s deltas against a committed baseline and
// exits non-zero when any benchmark regresses past -regress-pct (the CI
// perf-smoke gate). -shardsweep plots wall-clock scaling of the sharded
// read executor across shard counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"
	"time"

	"github.com/conzone/conzone"
	"github.com/conzone/conzone/internal/config"
	"github.com/conzone/conzone/internal/experiments"
	"github.com/conzone/conzone/internal/units"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, table2, fig6a, fig6b, fig7, fig8, ablations")
	quick := flag.Bool("quick", false, "reduced I/O volumes for a fast run")
	cfgPath := flag.String("config", "", "device configuration JSON (default: the paper's §IV-A setup)")
	metrics := flag.Bool("metrics", false, "run an instrumented workload and print Prometheus-style lifecycle metrics")
	metricsJSON := flag.String("metrics-json", "", "with -metrics or -qd: also write the JSON results to this file")
	chromeOut := flag.String("chrome", "", "with -metrics: also write the simulated timeline as a Chrome Trace Event file")
	qd := flag.String("qd", "", "comma-separated queue depths to sweep through the async host interface (e.g. 1,2,4,8,16)")
	faults := flag.Bool("faults", false, "benchmark with the NAND fault model enabled and report fault/recovery statistics")
	faultSeed := flag.Uint64("fault-seed", 1, "with -faults: fault model RNG seed")
	crash := flag.Bool("crash", false, "run the crash-remount differential fuzzer (power cut at a seeded instant, remount, verify durability)")
	zonelife := flag.Bool("zonelife", false, "characterize zone management: finish-latency-vs-fullness curve and reset/read interference (self-checking)")
	crashSeeds := flag.Int("crash-seeds", 8, "with -crash: how many seeds to run")
	crashOps := flag.Int("crash-ops", 600, "with -crash: ops per generated sequence")
	timeseries := flag.Bool("timeseries", false, "sample a sustained random-write workload on the virtual clock and print the WAF/GC series")
	serve := flag.String("serve", "", "with -timeseries (implied): serve /metrics, /timeseries.json, /zones.json and /debug/pprof on this address (e.g. :9090)")
	sampleEvery := flag.Duration("sample-interval", 5*time.Millisecond, "with -timeseries: virtual-time sample interval")
	seriesJSONL := flag.String("series-jsonl", "", "with -timeseries: write the sample series as JSON Lines to this file")
	seriesCSV := flag.String("series-csv", "", "with -timeseries: write the sample series as CSV to this file")
	selfbench := flag.Bool("selfbench", false, "measure the emulator's own wall-clock throughput (ns per emulated I/O)")
	jsonOut := flag.String("json", "", "with -selfbench: write the results to this file (e.g. BENCH_emulator.json)")
	compare := flag.String("compare", "", "with -selfbench: compare against this baseline JSON and exit non-zero on regression")
	regressPct := flag.Float64("regress-pct", 25, "with -compare: ns/op regression percentage that fails the comparison")
	shards := flag.Int("shards", 0, "with -selfbench: read-shard count override (0 = config default, 1 = sequential)")
	shardSweep := flag.String("shardsweep", "", "comma-separated shard counts to sweep over the QD16 read benchmarks (e.g. 1,2,4,8)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // flush accumulated allocations into the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *selfbench {
		report, err := runSelfBench(*jsonOut, *shards)
		if err != nil {
			fatal(err)
		}
		if *compare != "" {
			base, err := loadBaseline(*compare)
			if err != nil {
				fatal(err)
			}
			if err := compareReports(report, base, *regressPct); err != nil {
				fatal(err)
			}
		}
		return
	}
	if *shardSweep != "" {
		counts, err := parseDepths(*shardSweep)
		if err != nil {
			fatal(fmt.Errorf("-shardsweep: %w", err))
		}
		if err := runShardSweep(counts); err != nil {
			fatal(err)
		}
		return
	}

	cfg := config.Paper()
	if *cfgPath != "" {
		var err error
		cfg, err = config.Load(*cfgPath)
		if err != nil {
			fatal(err)
		}
	}
	if *metrics {
		if err := runMetrics(cfg, *metricsJSON, *chromeOut); err != nil {
			fatal(err)
		}
		return
	}
	if *timeseries || *serve != "" {
		err := runTimeseries(cfg, tsOptions{
			serve:    *serve,
			jsonl:    *seriesJSONL,
			csv:      *seriesCSV,
			interval: *sampleEvery,
			quick:    *quick,
		})
		if err != nil {
			fatal(err)
		}
		return
	}
	if *qd != "" {
		depths, err := parseDepths(*qd)
		if err != nil {
			fatal(err)
		}
		if err := runQDSweep(cfg, depths, *metricsJSON, *quick); err != nil {
			fatal(err)
		}
		return
	}
	if *faults {
		if err := runFaults(cfg, *faultSeed, *quick); err != nil {
			fatal(err)
		}
		return
	}
	if *zonelife {
		if err := runZoneLife(cfg, *quick); err != nil {
			fatal(err)
		}
		return
	}
	if *crash {
		n := *crashOps
		if *quick {
			n = 200
		}
		if err := runCrash(*faultSeed, *crashSeeds, n); err != nil {
			fatal(err)
		}
		return
	}
	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}

	runners := map[string]func(config.DeviceConfig, experiments.Options) error{
		"table1":    func(config.DeviceConfig, experiments.Options) error { return runTable1() },
		"table2":    func(c config.DeviceConfig, _ experiments.Options) error { return runTable2(c) },
		"fig6a":     runFig6a,
		"fig6b":     runFig6b,
		"fig7":      runFig7,
		"fig8":      runFig8,
		"ablations": runAblations,
		"emulators": runEmulators,
	}
	order := []string{"table1", "table2", "fig6a", "fig6b", "fig7", "fig8", "ablations", "emulators"}

	if *exp == "all" {
		for _, name := range order {
			if err := runners[name](cfg, opt); err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if err := run(cfg, opt); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conzone-bench:", err)
	os.Exit(1)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func runTable1() error {
	header("Table I: emulator capabilities")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Feature\tFEMU\tConfZNS\tNVMeVirt\tConZone\tthis repo")
	for _, r := range experiments.RunTable1() {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Feature, r.FEMU, r.ConfZNS, r.NVMeVirt, r.ConZone, r.ThisRepo)
	}
	return w.Flush()
}

func runTable2(cfg config.DeviceConfig) error {
	header("Table II: media latencies")
	rows, err := experiments.RunTable2(cfg)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Media\tOp\tpaper\tmeasured\tof which transfer")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%v\t%v\t%v\n", r.Media, r.Op, r.Paper, r.Measured, r.TransferOverhead)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := experiments.VerifyTable2(rows); err != nil {
		return err
	}
	fmt.Println("timing model matches Table II exactly (plus stated transfers)")
	return nil
}

func runFig6a(cfg config.DeviceConfig, opt experiments.Options) error {
	header("Fig. 6(a): 512 KiB sequential bandwidth (MiB/s)")
	res, err := experiments.RunFig6a(cfg, opt)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Series\twrite ST\twrite MT\tread ST\tread MT")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.0f\n", r.Series, r.WriteST, r.WriteMT, r.ReadST, r.ReadMT)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	printChecks(res.Checks, res.Pass)
	return nil
}

func runFig6b(cfg config.DeviceConfig, opt experiments.Options) error {
	header("Fig. 6(b): write-buffer conflicts (48 KiB dual-zone writes)")
	res, err := experiments.RunFig6b(cfg, opt)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Case\tbandwidth MiB/s\tWAF\tbuffer evictions")
	fmt.Fprintf(w, "conflict (same parity)\t%.0f\t%.3f\t%d\n", res.ConflictBW, res.ConflictWAF, res.ConflictEvictions)
	fmt.Fprintf(w, "no conflict\t%.0f\t%.3f\t%d\n", res.NoConflictBW, res.NoConflictWAF, res.NoConflictEvictions)
	if err := w.Flush(); err != nil {
		return err
	}
	printChecks(res.Checks, res.Pass)
	return nil
}

func runFig7(cfg config.DeviceConfig, opt experiments.Options) error {
	header("Fig. 7: mapping mechanisms under 4 KiB random reads")
	res, err := experiments.RunFig7(cfg, opt)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Mapping\trange\tKIOPS\tp99\tL2P miss")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%v\t%.1f%%\n",
			p.Mapping, units.FormatBytes(p.Range), p.KIOPS, p.P99, p.MissRatio*100)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	printChecks(res.Checks, res.Pass)
	return nil
}

func runFig8(cfg config.DeviceConfig, opt experiments.Options) error {
	header("Fig. 8: L2P search strategies at ~27.4% miss rate")
	res, err := experiments.RunFig8(cfg, opt)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Strategy\tKIOPS\tp99\tmiss rate")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%s\t%.1f\t%v\t%.1f%%\n", p.Strategy, p.KIOPS, p.P99, p.MissRatio*100)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	printChecks(res.Checks, res.Pass)
	return nil
}

func runAblations(cfg config.DeviceConfig, opt experiments.Options) error {
	header("Ablations (DESIGN.md §5)")
	type runner func(config.DeviceConfig, experiments.Options) (experiments.AblationResult, error)
	for _, r := range []runner{
		experiments.RunAblationChannelBW,
		experiments.RunAblationDedicatedBuffers,
		experiments.RunAblationCombine,
		experiments.RunAblationZoneAggregation,
		experiments.RunAblationL2PLog,
	} {
		res, err := r(cfg, opt)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s: %s -> %s\n", res.Name, res.Baseline, res.Variant)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "metric\tbaseline\tvariant")
		for k, v := range res.Metrics {
			fmt.Fprintf(w, "%s\t%.3f\t%.3f\n", k, v[0], v[1])
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func runEmulators(cfg config.DeviceConfig, opt experiments.Options) error {
	header("Table I, dynamically: the emulators on a consumer workload")
	rows, err := experiments.RunEmulatorComparison(cfg, opt)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Emulator\tconflict write MiB/s\trandread KIOPS\tpremature flushes\tSLC path\tL2P cache")
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%s\t%s\t%s\n",
			r.Emulator, r.WriteBW, r.RandReadKIOPS,
			yn(r.ModelsPrematureFlush), yn(r.ModelsSLC), yn(r.ModelsL2PCache))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("only ConZone registers the consumer-specific internals (paper Table I)")
	return nil
}

// runMetrics drives an instrumented workload through the public Device API:
// conflicting dual-zone 48 KiB writes (premature flushes, SLC staging,
// combines), a flush, cold-cache random reads (map fetches, data reads) and
// a zone reset. Per-phase interval counters come from Stats.Delta; at the
// end the telemetry snapshot is printed as Prometheus text exposition, and
// optionally written as JSON and as a Chrome Trace Event file.
func runMetrics(cfg config.DeviceConfig, jsonPath, chromePath string) error {
	dev, err := conzone.Open(cfg)
	if err != nil {
		return err
	}
	dev.EnableObservation(0)

	const (
		ioBytes = 48 << 10 // the paper's Fig. 6(b) write size
		rounds  = 48
	)
	zb := dev.ZoneBytes()
	if int64(rounds)*ioBytes > zb {
		return fmt.Errorf("zone capacity %d too small for the metrics workload", zb)
	}
	buf := make([]byte, ioBytes)

	phase := func(name string, prev conzone.Stats) (conzone.Stats, error) {
		now := dev.Stats()
		d := now.Delta(prev)
		fmt.Printf("%-22s host %8s  premature %3d  staged %5d  combines %3d  map fetches %4d  WAF %.3f\n",
			name, units.FormatBytes(d.FTL.HostWrittenBytes+d.FTL.HostReadBytes),
			d.FTL.PrematureFlushes, d.FTL.StagedSectors, d.FTL.Combines, d.FTL.MapFetches, d.WAF)
		return now, nil
	}

	header("Lifecycle metrics workload (paper configuration)")
	snap := dev.Stats()
	// Zones 1 and 3 share a write buffer (zone mod 2): every alternation
	// evicts the other zone's partial data prematurely.
	for i := 0; i < rounds; i++ {
		off := int64(i) * ioBytes
		if err := dev.Write(1*zb+off, buf); err != nil {
			return err
		}
		if err := dev.Write(3*zb+off, buf); err != nil {
			return err
		}
	}
	if snap, err = phase("conflicting writes", snap); err != nil {
		return err
	}
	if err := dev.Flush(); err != nil {
		return err
	}
	if snap, err = phase("flush", snap); err != nil {
		return err
	}
	// Cold-cache random reads inside zone 1's written extent.
	state := uint64(0x9E3779B97F4A7C15)
	span := int64(rounds) * ioBytes
	for i := 0; i < 256; i++ {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		off := int64(state*0x2545F4914F6CDD1D) % (span / conzone.SectorSize)
		if off < 0 {
			off = -off
		}
		if _, err := dev.Read(1*zb+off*conzone.SectorSize, int(conzone.SectorSize)); err != nil {
			return err
		}
	}
	if snap, err = phase("random reads", snap); err != nil {
		return err
	}
	if err := dev.ResetZone(3); err != nil {
		return err
	}
	if _, err = phase("zone reset", snap); err != nil {
		return err
	}

	tel := dev.Telemetry()
	fmt.Println()
	if err := tel.WritePrometheus(os.Stdout); err != nil {
		return err
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tel.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote JSON telemetry snapshot to %s\n", jsonPath)
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tel.WriteChromeTrace(f); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace (%d events) to %s — open via chrome://tracing or https://ui.perfetto.dev\n",
			len(tel.Events), chromePath)
	}
	return nil
}

func printChecks(checks []string, pass bool) {
	for _, c := range checks {
		fmt.Println(" ", c)
	}
	if pass {
		fmt.Println("  => paper claims reproduced")
	} else {
		fmt.Println("  => SOME CLAIMS NOT REPRODUCED")
	}
}
