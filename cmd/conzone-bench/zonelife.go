package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"github.com/conzone/conzone/internal/config"
	"github.com/conzone/conzone/internal/ftl"
	"github.com/conzone/conzone/internal/sim"
)

// runZoneLife characterizes zone-management cost: the finish-latency-vs-
// fullness curve (an emptier zone pads more capacity, so finishing it takes
// longer) and read interference from a concurrent zone reset on shared
// chips. Both are self-checking: the curve must decrease monotonically with
// an empty zone strictly slower than a 90%-full one, and the reset must not
// make the concurrent read faster.
func runZoneLife(cfg config.DeviceConfig, quick bool) error {
	fills := []float64{0, 0.25, 0.5, 0.75, 0.9}
	if quick {
		fills = []float64{0, 0.5, 0.9}
	}

	header("Zone lifecycle: finish latency vs zone fullness")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "fill\twritten\tpad sectors\tfinish latency")
	lats := make([]sim.Time, len(fills))
	for i, fill := range fills {
		f, err := cfg.NewConZone()
		if err != nil {
			return err
		}
		zc := f.ZoneCapSectors()
		n := int64(fill * float64(zc))
		var at sim.Time
		if n > 0 {
			// Nil payload views write as zeros; the bench only needs the
			// write pointer moved and the media charged.
			done, err := f.Write(0, 0, make([][]byte, n))
			if err != nil {
				return err
			}
			if done, err = f.Flush(done, 0); err != nil {
				return err
			}
			at = done
			// Quiesce: buffer evictions the write already triggered may
			// still occupy chips past the flush ack; measure the finish
			// from the media completion watermark so the curve shows pad
			// cost, not queueing behind the fill traffic.
			if n := f.Array().Engine().Now(); n > at {
				at = n
			}
		}
		done, err := f.FinishZone(at, 0)
		if err != nil {
			return err
		}
		lats[i] = done - at
		fmt.Fprintf(w, "%3.0f%%\t%d\t%d\t%s\n", fill*100, n, f.Stats().PadSectors, fmtDur(lats[i]))
	}
	w.Flush()
	for i := 1; i < len(lats); i++ {
		if lats[i] >= lats[i-1] {
			return fmt.Errorf("zonelife: finish latency not strictly decreasing with fullness (%d%% -> %v, %d%% -> %v)",
				int(fills[i-1]*100), lats[i-1], int(fills[i]*100), lats[i])
		}
	}
	fmt.Println("\nfinish latency decreases monotonically with fullness; empty is the worst case")

	header("Zone lifecycle: read interference from a concurrent reset")
	const readSectors = 256
	prep := func() (*ftl.FTL, sim.Time, error) {
		f, err := cfg.NewConZone()
		if err != nil {
			return nil, 0, err
		}
		zc := f.ZoneCapSectors()
		var at sim.Time
		for _, zone := range []int{0, 1} {
			done, err := f.Write(at, int64(zone)*zc, make([][]byte, readSectors))
			if err != nil {
				return nil, 0, err
			}
			if done, err = f.Flush(done, zone); err != nil {
				return nil, 0, err
			}
			if done > at {
				at = done
			}
		}
		if n := f.Array().Engine().Now(); n > at {
			at = n
		}
		return f, at, nil
	}

	f, at, err := prep()
	if err != nil {
		return err
	}
	_, done, err := f.Read(at, 0, readSectors)
	if err != nil {
		return err
	}
	idle := done - at

	f, at, err = prep()
	if err != nil {
		return err
	}
	if _, err := f.ResetZone(at, 1); err != nil {
		return err
	}
	_, done, err = f.Read(at, 0, readSectors)
	if err != nil {
		return err
	}
	busy := done - at

	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\tread latency (256 sectors)")
	fmt.Fprintf(w, "idle device\t%s\n", fmtDur(idle))
	fmt.Fprintf(w, "zone reset in flight\t%s\n", fmtDur(busy))
	w.Flush()
	if busy < idle {
		return fmt.Errorf("zonelife: read got faster under a concurrent reset (%v < %v)", busy, idle)
	}
	fmt.Printf("\nreset interference: %.2fx the idle read latency (shared chips serialize erase and read)\n",
		float64(busy)/float64(idle))
	return nil
}

// fmtDur renders virtual nanoseconds human-readably.
func fmtDur(t sim.Time) string {
	switch {
	case t >= 1e6:
		return fmt.Sprintf("%.3f ms", float64(t)/1e6)
	case t >= 1e3:
		return fmt.Sprintf("%.3f us", float64(t)/1e3)
	}
	return fmt.Sprintf("%d ns", int64(t))
}
