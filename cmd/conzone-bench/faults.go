package main

import (
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"github.com/conzone/conzone/internal/config"
	"github.com/conzone/conzone/internal/fault"
	"github.com/conzone/conzone/internal/ftl"
	"github.com/conzone/conzone/internal/units"
	"github.com/conzone/conzone/internal/workload"
)

// runFaults benchmarks the device with the NAND fault model enabled and
// prints it next to a healthy run of the same jobs: a sequential fill
// (program fails drive superblock relocation and bad-block retirement)
// followed by random reads over the written extent (ECC read retries
// inflate tail latency). The faulty jobs run with ContinueOnError, so I/O
// errors are counted instead of aborting, and the fault/recovery counters
// and bad-block table are reported at the end.
func runFaults(cfg config.DeviceConfig, seed uint64, quick bool) error {
	header(fmt.Sprintf("Fault injection (seed %d): healthy vs faulty device", seed))

	healthy, err := cfg.NewConZone()
	if err != nil {
		return err
	}

	faultyCfg := cfg
	if faultyCfg.FTL.SpareSuperblocks == 0 {
		faultyCfg.FTL.SpareSuperblocks = 4
	}
	faultyCfg.FTL.Faults = &fault.Config{
		Seed:            seed,
		SLC:             fault.Probabilities{ProgramFail: 2e-4, EraseFail: 5e-4, ReadFail: 0.02},
		TLC:             fault.Probabilities{ProgramFail: 2e-3, EraseFail: 2e-3, ReadFail: 0.02},
		QLC:             fault.Probabilities{ProgramFail: 2e-3, EraseFail: 2e-3, ReadFail: 0.02},
		ReadRetryRounds: 4,
	}
	faulty, err := faultyCfg.NewConZone()
	if err != nil {
		return err
	}

	zoneBytes := healthy.ZoneCapSectors() * units.Sector
	zones := int64(8)
	if quick {
		zones = 4
	}
	if n := int64(healthy.NumZones()); zones > n {
		zones = n
	}
	span := zones * zoneBytes
	readVol := int64(8 * units.MiB)
	if quick {
		readVol = 2 * units.MiB
	}

	jobs := []workload.Job{
		{
			Name:             "seqwrite",
			Pattern:          workload.SeqWrite,
			BlockBytes:       512 * units.KiB,
			NumJobs:          2,
			RangeBytes:       span,
			TotalBytesPerJob: span / 2,
			PerOpOverhead:    2 * time.Microsecond,
			FlushAtEnd:       true,
			Seed:             seed,
		},
		{
			Name:             "randread",
			Pattern:          workload.RandRead,
			BlockBytes:       4 * units.KiB,
			NumJobs:          2,
			RangeBytes:       span,
			TotalBytesPerJob: readVol,
			PerOpOverhead:    2 * time.Microsecond,
			Seed:             seed,
		},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "job\tdevice\tbw MiB/s\tIOPS\tp50\tp99\tI/O errors")
	for _, job := range jobs {
		hres, err := workload.Run(healthy, job)
		if err != nil {
			return fmt.Errorf("healthy %s: %w", job.Name, err)
		}
		job.ContinueOnError = true
		fres, err := workload.Run(faulty, job)
		if err != nil {
			return fmt.Errorf("faulty %s: %w", job.Name, err)
		}
		row := func(dev string, r workload.Result) {
			note := ""
			if r.ReadOnly {
				note = " (read-only)"
			}
			fmt.Fprintf(w, "%s\t%s\t%.1f\t%.0f\t%v\t%v\t%d%s\n",
				r.Job, dev, r.BandwidthMiBps, r.IOPS, r.Lat.P50, r.Lat.P99, r.IOErrors, note)
		}
		row("healthy", hres)
		row("faulty", fres)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	printFaultSummary(faulty)
	return nil
}

// printFaultSummary reports the device's fault, recovery and bad-block
// state after a faulty run.
func printFaultSummary(f *ftl.FTL) {
	st := f.Stats()
	fmt.Println("\nFault and recovery counters:")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "program fails\t%d\n", st.ProgramFails)
	fmt.Fprintf(w, "erase fails\t%d\n", st.EraseFails)
	fmt.Fprintf(w, "read retry rounds\t%d\n", st.ReadRetries)
	fmt.Fprintf(w, "uncorrectable reads\t%d\n", st.UncorrectableReads)
	fmt.Fprintf(w, "superblock relocations\t%d (%d sectors copied)\n", st.Relocations, st.RelocatedSectors)
	fmt.Fprintf(w, "retired superblocks\t%d (normal) + %d (SLC staging)\n",
		st.RetiredSuperblocks, f.Staging().RetiredSuperblocks())
	fmt.Fprintf(w, "free superblock pool\t%d (of %d spares reserved)\n",
		len(f.FreeSBList()), f.SpareSuperblocks())
	fmt.Fprintf(w, "acknowledged sectors lost\t%d (must be 0)\n", st.LostAckSectors)
	fmt.Fprintf(w, "read-only\t%v\n", f.ReadOnly())
	w.Flush()

	if bbt := f.BadBlockTable(); len(bbt) > 0 {
		fmt.Println("\nGrown bad-block table:")
		bw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(bw, "chip\tblock\tfailed op")
		for _, bb := range bbt {
			fmt.Fprintf(bw, "%d\t%d\t%s\n", bb.Chip, bb.Block, bb.Op)
		}
		bw.Flush()
	}
}
