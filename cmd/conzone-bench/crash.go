package main

import (
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"github.com/conzone/conzone/internal/check"
)

// runCrash drives the crash-remount differential fuzzer from internal/check
// as a command-line smoke test: each seed runs a generated op sequence
// twice — once uninterrupted to learn its virtual duration, once with a
// power cut armed at a seeded instant inside it — then remounts the crashed
// device and verifies that everything a flush barrier acknowledged reads
// back, the recovered state is audit-clean, and the device keeps working
// for the rest of the sequence. Seeds alternate between a healthy device
// and one with the NAND fault model layered under the power cut.
func runCrash(baseSeed uint64, nSeeds, nOps int) error {
	header(fmt.Sprintf("Crash-remount differential fuzz: %d seeds x %d ops", nSeeds, nOps))

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "seed\tfaults\tcrashed\tresult\twall")
	crashes, failures := 0, 0
	for i := 0; i < nSeeds; i++ {
		seed := baseSeed + uint64(i)
		withFaults := i%2 == 1
		start := time.Now()
		crashed, err := check.RunCrashSequence(seed, nOps, 64, withFaults)
		wall := time.Since(start).Round(time.Millisecond)
		result := "ok"
		if err != nil {
			result = err.Error()
			failures++
		}
		if crashed {
			crashes++
		}
		fmt.Fprintf(w, "%#x\t%v\t%v\t%s\t%v\n", seed, withFaults, crashed, result, wall)
	}
	w.Flush()
	fmt.Printf("\n%d/%d runs crashed and remounted, %d failed\n", crashes, nSeeds, failures)
	if failures > 0 {
		return fmt.Errorf("crash fuzz: %d of %d seeds failed", failures, nSeeds)
	}
	if crashes == 0 {
		return fmt.Errorf("crash fuzz: no seed fired its power cut (stale parameters?)")
	}
	fmt.Println("durability contract held: acked-durable data survived every remount")
	return nil
}
