package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"text/tabwriter"
	"time"

	"github.com/conzone/conzone"
	"github.com/conzone/conzone/internal/config"
	"github.com/conzone/conzone/internal/telemetry"
	"github.com/conzone/conzone/internal/units"
)

// tsOptions bundles the -timeseries / -serve flag values.
type tsOptions struct {
	serve    string        // listen address; "" = run once and exit
	jsonl    string        // write the series as JSON Lines here
	csv      string        // write the series as CSV here
	interval time.Duration // virtual sample interval
	quick    bool
}

// randomWriter drives sustained random writes through the public Device
// API: each step picks a pseudo-random zone from a working set and appends
// one sub-programming-unit burst at its write pointer, resetting the zone
// once full. Sub-PU bursts detour through SLC staging, zone alternation
// evicts write buffers prematurely, and resets invalidate staged data — so
// a long run exercises exactly the machinery (staging fill, GC migration,
// WAF climb) the virtual-time series is meant to expose.
type randomWriter struct {
	dev   *conzone.Device
	zones []int   // working set
	offs  []int64 // next write offset per working-set zone
	buf   []byte
	state uint64 // xorshift64* PRNG
}

// tsWriteBytes is the per-step burst size: 48 KiB, the paper's Fig. 6(b)
// write size, deliberately smaller than the 96 KiB programming unit.
const tsWriteBytes = 48 << 10

func newRandomWriter(dev *conzone.Device, numZones int) *randomWriter {
	w := &randomWriter{
		dev:   dev,
		buf:   make([]byte, tsWriteBytes),
		state: 0x9E3779B97F4A7C15,
	}
	// Use zones from the upper half of the LBA space, clear of any
	// conventional zones at the front. An even count keeps both write
	// buffers (zone mod 2) in play.
	base := dev.NumZones() / 2
	for z := base; z < base+numZones && z < dev.NumZones(); z++ {
		w.zones = append(w.zones, z)
		w.offs = append(w.offs, 0)
	}
	return w
}

func (w *randomWriter) rand() uint64 {
	w.state ^= w.state >> 12
	w.state ^= w.state << 25
	w.state ^= w.state >> 27
	return w.state * 0x2545F4914F6CDD1D
}

// step performs one random-zone write, resetting the zone when full.
func (w *randomWriter) step() error {
	i := int(w.rand() % uint64(len(w.zones)))
	zb := w.dev.ZoneBytes()
	if w.offs[i]+tsWriteBytes > zb {
		if err := w.dev.ResetZone(w.zones[i]); err != nil {
			return err
		}
		w.offs[i] = 0
	}
	if err := w.dev.Write(int64(w.zones[i])*zb+w.offs[i], w.buf); err != nil {
		return err
	}
	w.offs[i] += tsWriteBytes
	return nil
}

// run writes total bytes, stepping burst by burst.
func (w *randomWriter) run(total int64) error {
	for written := int64(0); written < total; written += tsWriteBytes {
		if err := w.step(); err != nil {
			return err
		}
	}
	return nil
}

// runTimeseries is the -timeseries mode: sample a sustained random-write
// workload on the virtual clock, print the series, optionally export it
// and optionally serve the live endpoint.
func runTimeseries(cfg config.DeviceConfig, opt tsOptions) error {
	dev, err := conzone.Open(cfg)
	if err != nil {
		return err
	}
	dev.EnableObservation(0)
	if err := dev.EnableSampling(opt.interval, 0); err != nil {
		return err
	}

	zones, factor := 8, int64(3)
	if opt.quick {
		zones, factor = 4, 1
	}
	w := newRandomWriter(dev, zones)
	total := int64(len(w.zones)) * dev.ZoneBytes() * factor

	var srvErr chan error
	if opt.serve != "" {
		// Bind before starting the workload so a scraper (CI) can connect
		// immediately; the endpoint serves live snapshots while the
		// workload still runs.
		ln, err := net.Listen("tcp", opt.serve)
		if err != nil {
			return err
		}
		fmt.Printf("serving observability endpoint on http://%s/ (metrics, timeseries.json, zones.json, debug/pprof)\n",
			ln.Addr())
		srvErr = make(chan error, 1)
		go func() { srvErr <- http.Serve(ln, dev.ObservabilityHandler()) }()
	}

	header(fmt.Sprintf("Virtual-time series: random %s writes over %d zones, %s total, sampled every %v",
		units.FormatBytes(tsWriteBytes), len(w.zones), units.FormatBytes(total), opt.interval))
	if err := w.run(total); err != nil {
		return err
	}
	if err := dev.Flush(); err != nil {
		return err
	}

	printSeries(dev)
	if opt.jsonl != "" {
		if err := exportSeries(opt.jsonl, dev.Series(), telemetry.WriteSeriesJSONL); err != nil {
			return err
		}
		fmt.Printf("wrote series (JSONL) to %s\n", opt.jsonl)
	}
	if opt.csv != "" {
		if err := exportSeries(opt.csv, dev.Series(), telemetry.WriteSeriesCSV); err != nil {
			return err
		}
		fmt.Printf("wrote series (CSV) to %s\n", opt.csv)
	}

	if opt.serve != "" {
		fmt.Println("workload finished; endpoint stays up — interrupt to exit")
		return <-srvErr
	}
	return nil
}

func exportSeries(path string, s []conzone.Sample, write func(w io.Writer, s []conzone.Sample) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f, s)
}

// printSeries renders up to 24 evenly spaced samples of the retained
// series as a table: the WAF and GC activity curves over virtual time.
func printSeries(dev *conzone.Device) {
	series := dev.Series()
	recorded, dropped := dev.SamplesRecorded()
	fmt.Printf("samples: %d recorded, %d retained, %d overwritten\n\n", recorded, len(series), dropped)
	if len(series) == 0 {
		return
	}
	stride := (len(series) + 23) / 24
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "t(ms)\twritten\tWAF(int)\tWAF(cum)\tGC migr\tGC runs\tSLC valid\tSLC free\tbufd\tfree SB\topen")
	for i := 0; i < len(series); i += stride {
		s := series[i]
		o := s.Stats.Occupancy
		mark := ""
		if s.Discontinuity {
			mark = " *CUT*"
		}
		fmt.Fprintf(w, "%.1f%s\t%s\t%.3f\t%.3f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			float64(s.At)/1e6, mark, units.FormatBytes(s.Delta.FTL.HostWrittenBytes),
			s.Delta.WAF, s.Stats.WAF,
			s.Delta.Staging.Migrated, s.Delta.Staging.Collections,
			o.SLCValidSectors, o.SLCFreeSuperblocks, o.BufferedSectors,
			o.FreeSuperblocks, o.OpenZones)
	}
	w.Flush()
}
