package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/conzone/conzone/internal/config"
	"github.com/conzone/conzone/internal/host"
	"github.com/conzone/conzone/internal/units"
	"github.com/conzone/conzone/internal/workload"
)

// The queue-depth sweep measures what the multi-queue host interface adds
// over the synchronous API: 4 KiB random reads scale with outstanding
// commands because independent reads fan out across idle chips, while
// sequential writes into a single zone stay flat — the zone write lock
// serializes them no matter how many are queued (mq-deadline semantics).

// qdPoint is one (depth, job) measurement of the sweep.
type qdPoint struct {
	Depth int           `json:"depth"`
	IOPS  float64       `json:"iops"`
	BW    float64       `json:"bandwidth_mibps"`
	P50   time.Duration `json:"p50_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// qdSweepDoc is the -metrics-json document of a sweep.
type qdSweepDoc struct {
	Depths    []int     `json:"depths"`
	RandRead  []qdPoint `json:"randread_4k"`
	SeqWrite  []qdPoint `json:"seqwrite_1zone"`
	ReadScale float64   `json:"read_scaling"`  // IOPS at max depth / IOPS at depth 1
	WriteVar  float64   `json:"write_scaling"` // BW at max depth / BW at depth 1
}

// parseDepths parses the -qd flag value ("1,2,4,8,16").
func parseDepths(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad queue depth %q", part)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -qd list")
	}
	return out, nil
}

// newController builds a fresh device and host controller pair for one
// sweep point, so depths never share media state.
func newController(cfg config.DeviceConfig, depth int) (*host.Controller, error) {
	f, err := cfg.NewConZone()
	if err != nil {
		return nil, err
	}
	hostDepth := depth
	if hostDepth < host.DefaultDepth {
		hostDepth = host.DefaultDepth
	}
	return host.New(f, host.Config{Queues: 1, Depth: hostDepth})
}

// runQDSweep measures 4 KiB random reads and single-zone sequential
// writes at each queue depth, reporting IOPS and completion-latency
// percentiles per depth.
func runQDSweep(cfg config.DeviceConfig, depths []int, jsonPath string, quick bool) error {
	volume := int64(16 * units.MiB)
	if quick {
		volume = 4 * units.MiB
	}

	doc := qdSweepDoc{Depths: depths}
	header(fmt.Sprintf("Queue-depth sweep (qd %s): 4 KiB randread vs single-zone seqwrite", joinInts(depths)))

	for _, depth := range depths {
		// Random reads over a prefilled multi-zone region: independent
		// commands, free to overlap on idle chips.
		ctrl, err := newController(cfg, depth)
		if err != nil {
			return err
		}
		zoneBytes := ctrl.ZoneCapSectors() * units.Sector
		readRange := 4 * zoneBytes
		if max := ctrl.TotalSectors() * units.Sector; readRange > max {
			readRange = max
		}
		at, err := workload.Prefill(ctrl, 0, 0, readRange, false)
		if err != nil {
			return fmt.Errorf("qd %d prefill: %w", depth, err)
		}
		res, err := workload.Run(ctrl, workload.Job{
			Name:             fmt.Sprintf("randread-qd%d", depth),
			Pattern:          workload.RandRead,
			BlockBytes:       4 * units.KiB,
			NumJobs:          1,
			RangeBytes:       readRange,
			TotalBytesPerJob: volume,
			PerOpOverhead:    time.Microsecond,
			QueueDepth:       depth,
			Seed:             42,
			StartAt:          at,
		})
		if err != nil {
			return fmt.Errorf("qd %d randread: %w", depth, err)
		}
		doc.RandRead = append(doc.RandRead, qdPoint{
			Depth: depth, IOPS: res.IOPS, BW: res.BandwidthMiBps,
			P50: res.Lat.P50, P99: res.Lat.P99,
		})

		// Sequential writes into one zone: every command targets the same
		// zone write lock, so depth must not buy throughput.
		ctrl, err = newController(cfg, depth)
		if err != nil {
			return err
		}
		wvol := volume
		if zcap := ctrl.ZoneCapSectors() * units.Sector; wvol > zcap {
			wvol = units.AlignDown(zcap, 512*units.KiB)
		}
		res, err = workload.Run(ctrl, workload.Job{
			Name:             fmt.Sprintf("seqwrite-qd%d", depth),
			Pattern:          workload.SeqWrite,
			BlockBytes:       512 * units.KiB,
			NumJobs:          1,
			RangeBytes:       ctrl.ZoneCapSectors() * units.Sector,
			TotalBytesPerJob: wvol,
			PerOpOverhead:    time.Microsecond,
			QueueDepth:       depth,
			Seed:             42,
			FlushAtEnd:       true,
		})
		if err != nil {
			return fmt.Errorf("qd %d seqwrite: %w", depth, err)
		}
		doc.SeqWrite = append(doc.SeqWrite, qdPoint{
			Depth: depth, IOPS: res.IOPS, BW: res.BandwidthMiBps,
			P50: res.Lat.P50, P99: res.Lat.P99,
		})
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "qd\trandread KIOPS\tp50\tp99\t\tseqwrite MiB/s\tp50\tp99")
	for i := range depths {
		r, s := doc.RandRead[i], doc.SeqWrite[i]
		fmt.Fprintf(w, "%d\t%.1f\t%v\t%v\t\t%.0f\t%v\t%v\n",
			depths[i], r.IOPS/1000, r.P50, r.P99, s.BW, s.P50, s.P99)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	first, last := doc.RandRead[0], doc.RandRead[len(doc.RandRead)-1]
	if first.IOPS > 0 {
		doc.ReadScale = last.IOPS / first.IOPS
	}
	wfirst, wlast := doc.SeqWrite[0], doc.SeqWrite[len(doc.SeqWrite)-1]
	if wfirst.BW > 0 {
		doc.WriteVar = wlast.BW / wfirst.BW
	}
	var checks []string
	pass := true
	if len(depths) > 1 && depths[len(depths)-1] > depths[0] {
		ok := doc.ReadScale > 1.2
		pass = pass && ok
		checks = append(checks, fmt.Sprintf("read IOPS scales with queue depth: x%.2f from qd %d to qd %d (want > 1.2) %s",
			doc.ReadScale, first.Depth, last.Depth, okMark(ok)))
		ok = doc.WriteVar < 1.2
		pass = pass && ok
		checks = append(checks, fmt.Sprintf("single-zone writes stay serialized: x%.2f bandwidth at qd %d (want < 1.2) %s",
			doc.WriteVar, wlast.Depth, okMark(ok)))
	}
	printChecks(checks, pass)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
		fmt.Printf("wrote queue-depth sweep JSON to %s\n", jsonPath)
	}
	if !pass {
		return fmt.Errorf("queue-depth sweep checks failed")
	}
	return nil
}

func okMark(ok bool) string {
	if ok {
		return "[ok]"
	}
	return "[FAIL]"
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}
