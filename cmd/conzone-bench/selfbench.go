package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"text/tabwriter"
	"time"

	"github.com/conzone/conzone/internal/emubench"
	"github.com/conzone/conzone/internal/units"
)

// selfBenchResult is one throughput benchmark's outcome in the exported
// BENCH_emulator.json. ns/op is wall-clock host time per workload step (one
// 4 KiB I/O plus any wrap reset or forced flush the workload calls for) —
// the emulator-speed metric the ROADMAP gates on, not virtual time.
type selfBenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MiBPerSec   float64 `json:"mib_per_s"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// selfBenchReport is the schema of BENCH_emulator.json: environment header
// plus one entry per benchmark. Future performance PRs regenerate the file
// with `conzone-bench -selfbench -json BENCH_emulator.json` and compare
// against the committed baseline.
type selfBenchReport struct {
	Date      string            `json:"date"`
	GoVersion string            `json:"go_version"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	Results   []selfBenchResult `json:"results"`
}

// runBenchmark measures one spec through testing.Benchmark and folds the
// result into the baseline schema.
func runBenchmark(spec emubench.Spec) selfBenchResult {
	res := testing.Benchmark(emubench.Bench(spec))
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	mibps := 0.0
	if nsPerOp > 0 {
		// One workload step moves one 4 KiB sector.
		mibps = float64(units.Sector) / nsPerOp * 1e9 / float64(units.MiB)
	}
	return selfBenchResult{
		Name:        spec.Name(),
		Iterations:  res.N,
		NsPerOp:     nsPerOp,
		MiBPerSec:   mibps,
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
}

// runSelfBench measures the emulator's own wall-clock throughput: every
// emubench spec (seqwrite, randread, randwrite, gcheavy at QD 1 and 16) is
// run through testing.Benchmark, printed as a table, and optionally written
// to jsonPath as the machine-readable baseline. shards, when non-zero,
// overrides the device's read-shard count for every spec (the benchmark
// names then carry a /shardsN suffix, so such a run is never mistaken for
// the canonical baseline family).
func runSelfBench(jsonPath string, shards int) (*selfBenchReport, error) {
	report := &selfBenchReport{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\titers\tns/op\tMiB/s\tB/op\tallocs/op")
	for _, spec := range emubench.Specs() {
		spec.Shards = shards
		r := runBenchmark(spec)
		report.Results = append(report.Results, r)
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%d\t%d\n",
			r.Name, r.Iterations, r.NsPerOp, r.MiBPerSec, r.BytesPerOp, r.AllocsPerOp)
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}

	if jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return nil, err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return report, nil
}
