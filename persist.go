package conzone

import (
	"fmt"

	"github.com/conzone/conzone/internal/fault"
	"github.com/conzone/conzone/internal/ftl"
	"github.com/conzone/conzone/internal/host"
	"github.com/conzone/conzone/internal/nand"
	"github.com/conzone/conzone/internal/power"
	"github.com/conzone/conzone/internal/telemetry"
)

// Power-loss injection and crash-consistent recovery.
//
// ArmPowerCut schedules a cut at a virtual-time instant: the first media
// operation that would complete after the instant is torn (nothing of it
// reaches the media) and the device dies — every subsequent command fails
// with ErrPowerLoss. A cut loses all volatile state: write-buffer contents
// that were never flushed, queued commands, the RAM mapping table and zone
// write pointers. Remount then rebuilds the device from the surviving
// media alone, exactly as a real drive's mount path would: everything a
// successful flush barrier acknowledged reads back, and every zone's write
// pointer matches its durable data.

// ErrPowerLoss reports a command issued at or after an armed power cut.
var ErrPowerLoss = power.ErrPowerLoss

// StatusPowerLoss classifies a completion that failed to power loss.
const StatusPowerLoss = host.StatusPowerLoss

// ArmPowerCut arms a power cut at virtual instant at. The device operates
// normally until a media operation would complete past the instant; that
// operation is torn atomically and the device is dead from then on.
// Re-arming moves the instant; the cut fires at most once.
func (d *Device) ArmPowerCut(at Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.f.ArmPowerCut(at)
}

// PowerLost reports whether an armed power cut has fired.
func (d *Device) PowerLost() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.PowerLost()
}

// Remount powers the device back on and recovers it from the surviving
// media: the L2P mapping, zone write pointers, SLC staging allocator,
// superblock bindings, grown-bad-block table and spare pool are all rebuilt
// by replaying the metadata journal and scanning the per-sector OOB stamps.
// The fault injector's RNG stream and script cursors carry across, so a
// crashed-and-remounted run sees the same fault sequence an uninterrupted
// run would. The host interface is rebuilt with its current queue layout;
// in-flight and queued commands from before the cut are gone, as on real
// hardware. The virtual clock keeps running across the remount.
func (d *Device) Remount() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var snap *fault.Snapshot
	if inj := d.f.FaultInjector(); inj != nil {
		s := inj.Snapshot()
		snap = &s
	}
	f, done, err := ftl.Recover(d.f.Array(), d.f.Params(), snap)
	if err != nil {
		return fmt.Errorf("conzone: remount: %w", err)
	}
	h, err := host.New(f, d.h.Configuration())
	if err != nil {
		return fmt.Errorf("conzone: remount: %w", err)
	}
	d.f, d.h = f, h
	// Advance the clock directly instead of through advance(): the sampler
	// must not record a regular sample here, because its delta baseline
	// still holds pre-crash counters from the old FTL. The discontinuity
	// marker below resets the baseline to the recovered snapshot and breaks
	// the series explicitly; occupancy gauges restart from the recovered
	// (drained) state.
	if done > d.now {
		d.now = done
	}
	d.smp.Discontinuity(d.now, telemetry.Collect(d.f))
	return nil
}

// SaveImage persists the NAND media — programmed payloads, per-chip append
// points, erase counts, OOB stamps and the metadata journal — to a
// file-backed image. Queued asynchronous commands are dispatched first so
// the image reflects every completion the host has seen. Volatile state
// (write buffers, mapping table, caches) is deliberately not saved: an
// image reopened with OpenImage goes through the same recovery scan a
// crashed device does, so saving at an arbitrary instant is equivalent to
// cutting power there.
func (d *Device) SaveImage(path string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.advance(d.h.Kick())
	return d.f.Array().SaveImage(path)
}

// OpenImage builds a device over a NAND image saved with SaveImage. The
// configuration must describe the same geometry the image was taken under;
// the FTL parameters and latency table may differ (they are host-side
// state). The device recovers exactly as Remount does and starts its
// virtual clock at zero. Fault-injector streams do not persist in the
// image: a fresh injector is built from cfg's fault configuration.
func OpenImage(cfg Config, path string) (*Device, error) {
	if err := cfg.Latency.ValidateFor(cfg.Geometry); err != nil {
		return nil, fmt.Errorf("conzone: %w", err)
	}
	arr, err := nand.LoadArray(path, cfg.Latency)
	if err != nil {
		return nil, fmt.Errorf("conzone: %w", err)
	}
	if arr.Geometry() != cfg.Geometry {
		return nil, fmt.Errorf("conzone: image geometry %+v does not match configuration %+v",
			arr.Geometry(), cfg.Geometry)
	}
	f, done, err := ftl.Recover(arr, cfg.FTL, nil)
	if err != nil {
		return nil, fmt.Errorf("conzone: open image: %w", err)
	}
	h, err := host.New(f, host.Config{})
	if err != nil {
		return nil, err
	}
	d := &Device{f: f, h: h}
	d.advance(done)
	return d, nil
}
