package conzone

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/conzone/conzone/internal/config"
	"github.com/conzone/conzone/internal/host"
	"github.com/conzone/conzone/internal/units"
	"github.com/conzone/conzone/internal/workload"
)

// TestAsyncDeterminismAcrossQueueDepths runs the same seeded sequential
// write workload at queue depth 1 (the synchronous driver) and queue depth
// 16 (the queued driver) and requires identical logical media state: depth
// changes submission overlap, never what lands where.
func TestAsyncDeterminismAcrossQueueDepths(t *testing.T) {
	run := func(depth int) (*host.Controller, workload.Result) {
		t.Helper()
		f, err := config.Small().NewConZone()
		if err != nil {
			t.Fatal(err)
		}
		c, err := host.New(f, host.Config{Queues: 2, Depth: 32})
		if err != nil {
			t.Fatal(err)
		}
		zb := c.ZoneCapSectors() * units.Sector
		res, err := workload.Run(c, workload.Job{
			Name:             fmt.Sprintf("det-qd%d", depth),
			Pattern:          workload.SeqWrite,
			BlockBytes:       96 * units.KiB, // program-unit aligned: direct programs
			NumJobs:          2,
			RangeBytes:       2 * zb,
			TotalBytesPerJob: units.AlignDown(zb, 96*units.KiB),
			PerOpOverhead:    2 * time.Microsecond,
			QueueDepth:       depth,
			WithData:         true,
			FlushAtEnd:       true,
			Seed:             7,
		})
		if err != nil {
			t.Fatalf("qd %d: %v", depth, err)
		}
		return c, res
	}

	c1, r1 := run(1)
	c16, r16 := run(16)
	if r1.Bytes != r16.Bytes || r1.Ops != r16.Ops {
		t.Fatalf("volumes differ: qd1 %d bytes/%d ops, qd16 %d bytes/%d ops",
			r1.Bytes, r1.Ops, r16.Bytes, r16.Ops)
	}

	// Bit-identical read-back of the whole written region.
	total := 2 * c1.ZoneCapSectors()
	at1, at16 := c1.MaxDone(), c16.MaxDone()
	const chunk = int64(64)
	for lba := int64(0); lba < total; lba += chunk {
		n := chunk
		if lba+n > total {
			n = total - lba
		}
		d1, done1, err := c1.Read(at1, lba, n)
		if err != nil {
			t.Fatal(err)
		}
		d16, done16, err := c16.Read(at16, lba, n)
		if err != nil {
			t.Fatal(err)
		}
		at1, at16 = done1, done16
		for s := range d1 {
			if !bytes.Equal(d1[s], d16[s]) {
				t.Fatalf("lba %d: media contents differ between qd1 and qd16", lba+int64(s))
			}
		}
	}
}

// TestAsyncRunBitIdentical runs the identical queued job twice and
// requires bit-identical results — the determinism contract of the
// arbiter: dispatch order is (ready time, tag), never goroutine schedule.
func TestAsyncRunBitIdentical(t *testing.T) {
	run := func() workload.Result {
		t.Helper()
		f, err := config.Small().NewConZone()
		if err != nil {
			t.Fatal(err)
		}
		c, err := host.New(f, host.Config{Queues: 4, Depth: 64})
		if err != nil {
			t.Fatal(err)
		}
		zb := c.ZoneCapSectors() * units.Sector
		at, err := workload.Prefill(c, 0, 0, 2*zb, true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := workload.Run(c, workload.Job{
			Name:             "randread-det",
			Pattern:          workload.RandRead,
			BlockBytes:       4 * units.KiB,
			NumJobs:          3,
			RangeBytes:       2 * zb,
			TotalBytesPerJob: zb / 2,
			PerOpOverhead:    time.Microsecond,
			QueueDepth:       8,
			Seed:             99,
			StartAt:          at,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	// The latency histograms must match observation for observation; the
	// remaining fields compare as one struct once the pointers are masked.
	if ah, bh := a.Hist.Summarize(), b.Hist.Summarize(); ah != bh {
		t.Fatalf("two identical queued runs diverged in latency:\n%+v\n%+v", ah, bh)
	}
	a.Hist, b.Hist = nil, nil
	if a != b {
		t.Fatalf("two identical queued runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestQueueDepthScalesReads is the tentpole's acceptance behaviour at test
// scale: random-read throughput must improve with queue depth on a
// multi-chip device, while single-zone sequential writes must not.
func TestQueueDepthScalesReads(t *testing.T) {
	read := func(depth int) workload.Result {
		t.Helper()
		f, err := config.Small().NewConZone()
		if err != nil {
			t.Fatal(err)
		}
		c, err := host.New(f, host.Config{Queues: 1, Depth: 64})
		if err != nil {
			t.Fatal(err)
		}
		zb := c.ZoneCapSectors() * units.Sector
		at, err := workload.Prefill(c, 0, 0, 2*zb, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := workload.Run(c, workload.Job{
			Name:             fmt.Sprintf("scale-qd%d", depth),
			Pattern:          workload.RandRead,
			BlockBytes:       4 * units.KiB,
			NumJobs:          1,
			RangeBytes:       2 * zb,
			TotalBytesPerJob: zb,
			PerOpOverhead:    time.Microsecond,
			QueueDepth:       depth,
			Seed:             5,
			StartAt:          at,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r8 := read(1), read(8)
	if r8.IOPS <= r1.IOPS*1.2 {
		t.Fatalf("read IOPS did not scale with depth: qd1 %.0f, qd8 %.0f", r1.IOPS, r8.IOPS)
	}

	write := func(depth int) workload.Result {
		t.Helper()
		f, err := config.Small().NewConZone()
		if err != nil {
			t.Fatal(err)
		}
		c, err := host.New(f, host.Config{Queues: 1, Depth: 64})
		if err != nil {
			t.Fatal(err)
		}
		zb := c.ZoneCapSectors() * units.Sector
		res, err := workload.Run(c, workload.Job{
			Name:             fmt.Sprintf("wscale-qd%d", depth),
			Pattern:          workload.SeqWrite,
			BlockBytes:       96 * units.KiB,
			NumJobs:          1,
			RangeBytes:       zb,
			TotalBytesPerJob: units.AlignDown(zb, 96*units.KiB),
			PerOpOverhead:    time.Microsecond,
			QueueDepth:       depth,
			FlushAtEnd:       true,
			Seed:             5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	w1, w8 := write(1), write(8)
	if ratio := w8.BandwidthMiBps / w1.BandwidthMiBps; ratio > 1.2 {
		t.Fatalf("single-zone writes must stay serialized: qd8/qd1 bandwidth x%.2f", ratio)
	}
}

// TestDeviceZoneAppend drives Zone Append end to end through the public
// Device API, both synchronously and via Submit/Wait.
func TestDeviceZoneAppend(t *testing.T) {
	dev, err := Open(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	zb := dev.ZoneBytes()
	data := make([]byte, 8*SectorSize)
	for i := range data {
		data[i] = byte(i % 251)
	}

	// Synchronous appends land back to back at device-chosen offsets.
	off0, err := dev.Append(1, data)
	if err != nil {
		t.Fatal(err)
	}
	if off0 != zb {
		t.Fatalf("first append landed at %d, want the zone start %d", off0, zb)
	}
	off1, err := dev.Append(1, data)
	if err != nil {
		t.Fatal(err)
	}
	if off1 != off0+int64(len(data)) {
		t.Fatalf("second append landed at %d, want %d", off1, off0+int64(len(data)))
	}

	// Queued appends report their assigned LBA in the completion.
	tag, err := dev.Submit(0, HostRequest{Op: OpAppend, Zone: 1, Payloads: toSectors(data)})
	if err != nil {
		t.Fatal(err)
	}
	comp, ok := dev.Wait(tag)
	if !ok || comp.Err != nil {
		t.Fatalf("append completion: ok=%v err=%v", ok, comp.Err)
	}
	if got := comp.LBA * SectorSize; got != off1+int64(len(data)) {
		t.Fatalf("queued append landed at %d, want %d", got, off1+int64(len(data)))
	}

	got, err := dev.Read(off0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("appended data did not read back")
	}
	if err := dev.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncWriter exercises the convenience writer: windowed writes,
// appends with deferred offset assignment, sticky errors.
func TestAsyncWriter(t *testing.T) {
	dev, err := Open(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := dev.NewAsyncWriter(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4*SectorSize)
	for i := range data {
		data[i] = 0xA5
	}
	var idxs []int
	for i := 0; i < 24; i++ {
		idx, err := w.Append(2, data)
		if err != nil {
			t.Fatal(err)
		}
		idxs = append(idxs, idx)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	zb := dev.ZoneBytes()
	for i, idx := range idxs {
		if got, want := w.AssignedOffset(idx), 2*zb+int64(i*len(data)); got != want {
			t.Fatalf("append %d assigned offset %d, want %d", i, got, want)
		}
	}
	// Sequential windowed writes to another zone.
	w2, err := dev.NewAsyncWriter(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := w2.Write(3*zb+int64(i*len(data)), data); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	// A write off the write pointer surfaces as a sticky error by Flush.
	w3, err := dev.NewAsyncWriter(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w3.Write(5*zb+SectorSize, data); err != nil {
		t.Fatal(err) // queues fine; fails at dispatch
	}
	if err := w3.Flush(); err == nil {
		t.Fatal("want the write-pointer violation from Flush")
	}
	if w3.Err() == nil {
		t.Fatal("error must stick")
	}
	if err := dev.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncWriterQueueFullRetry pins the writer's behaviour on a shared
// full queue: another submitter holds half the slots, so once the writer's
// own commands fill the rest, every further submit must wait for one of its
// own completions and retry exactly once — SubmitAttempts proves there is
// no busy resubmit loop — and a writer with an empty window (nothing of its
// own to reap) must give up with ErrQueueFull instead of spinning.
func TestAsyncWriterQueueFullRetry(t *testing.T) {
	dev, err := Open(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.ConfigureQueues(1, 8); err != nil {
		t.Fatal(err)
	}
	// Occupy half the queue with reads that stay unreaped until the end.
	var raw []Tag
	for i := 0; i < 4; i++ {
		tag, err := dev.Submit(0, HostRequest{Op: OpRead, LBA: 0, N: 1})
		if err != nil {
			t.Fatal(err)
		}
		raw = append(raw, tag)
	}

	w, err := dev.NewAsyncWriter(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	zb := dev.ZoneBytes()
	data := make([]byte, 4*SectorSize)
	for i := range data {
		data[i] = byte(0xC3 ^ i)
	}
	const writes = 10
	for i := 0; i < writes; i++ {
		if _, err := w.Write(1*zb+int64(i*len(data)), data); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// The first 4 writes fit alongside the reads; each later one finds the
	// queue full, reaps its own oldest completion, and succeeds on the one
	// retry that slot allows.
	if got, want := w.SubmitAttempts(), int64(4+(writes-4)*2); got != want {
		t.Fatalf("SubmitAttempts = %d, want %d (one wait-and-retry per full-queue submit)", got, want)
	}

	// A second writer on the same full queue owns none of the occupants: it
	// must fail fast with ErrQueueFull, not loop.
	w2, err := dev.NewAsyncWriter(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Write(2*zb, data); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("empty-window submit on a full queue returned %v, want ErrQueueFull", err)
	}

	for _, tag := range raw {
		if _, ok := dev.Wait(tag); !ok {
			t.Fatalf("read completion of tag %d vanished", tag)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := dev.Read(1*zb, writes*len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writes; i++ {
		if !bytes.Equal(got[i*len(data):(i+1)*len(data)], data) {
			t.Fatalf("write %d did not land intact", i)
		}
	}
	if err := dev.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSubmitters hammers the device from parallel goroutines —
// one queue and one zone each — to exercise the concurrency contract
// under the race detector. Logical contents must come out exact.
func TestConcurrentSubmitters(t *testing.T) {
	dev, err := Open(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	queues := dev.QueueCount()
	if dev.NumZones() < queues {
		queues = dev.NumZones()
	}
	zb := dev.ZoneBytes()
	var wg sync.WaitGroup
	errs := make(chan error, queues)
	for g := 0; g < queues; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w, err := dev.NewAsyncWriter(g, 8)
			if err != nil {
				errs <- err
				return
			}
			data := make([]byte, 4*SectorSize)
			for i := range data {
				data[i] = byte(g + 1)
			}
			for i := 0; i < 16; i++ {
				if _, err := w.Append(g, data); err != nil {
					errs <- fmt.Errorf("goroutine %d append %d: %w", g, i, err)
					return
				}
			}
			if err := w.Flush(); err != nil {
				errs <- fmt.Errorf("goroutine %d flush: %w", g, err)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for g := 0; g < queues; g++ {
		got, err := dev.Read(int64(g)*zb, 16*4*int(SectorSize))
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range got {
			if b != byte(g+1) {
				t.Fatalf("zone %d byte %d: got %d, want %d", g, i, b, g+1)
			}
		}
	}
	if err := dev.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConfigureQueues covers reconfiguration and its idle requirement.
func TestConfigureQueues(t *testing.T) {
	dev, err := Open(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.ConfigureQueues(2, 4); err != nil {
		t.Fatal(err)
	}
	if dev.QueueCount() != 2 || dev.QueueDepth() != 4 {
		t.Fatalf("got %d queues depth %d", dev.QueueCount(), dev.QueueDepth())
	}
	tag, err := dev.Submit(1, HostRequest{Op: OpRead, LBA: 0, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.ConfigureQueues(4, 8); err == nil {
		t.Fatal("reconfigure with a command in flight must fail")
	}
	if _, ok := dev.Wait(tag); !ok {
		t.Fatal("completion lost")
	}
	if err := dev.ConfigureQueues(4, 8); err != nil {
		t.Fatalf("reconfigure when idle: %v", err)
	}
}
